"""PathM: streaming evaluation of XP{/,//,*} — paths without predicates
(section 3.1 of the paper).

Without predicates there is nothing to verify later: the moment an XML
node qualifies for the return machine node, it *is* a solution and is
output immediately — PathM is fully incremental.

Each machine node keeps a stack of the levels of active XML nodes that
solve its prefix subquery.  An XML node is pushed onto node ``v``'s stack
iff its level satisfies ζ(v) against some entry of the parent stack (or
against the document root for the machine root), so stacks never hold
non-solutions, and membership checks stay polynomial: to qualify an XML
node we inspect one stack — never the pattern matches it participates in.

The machine construction is shared with TwigM (interior ``'*'`` folding
and all), but the per-node state is a bare level stack — the branch-match
and candidate machinery of the general machine is unnecessary here.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.machine import (
    EDGE_EQ,
    TAG_CACHE_LIMIT,
    Machine,
    MachineNode,
    build_machine,
)
from repro.core.push import LimitCountingHandler
from repro.core.results import CollectingSink, ResultSink
from repro.errors import CheckpointError, UnsupportedQueryError
from repro.stream.events import EndElement, Event, StartElement
from repro.stream.recovery import ResourceLimits
from repro.xpath.querytree import QueryTree, compile_query


class PathM:
    """Evaluator for queries in XP{/,//,*}.

    Raises :class:`~repro.errors.UnsupportedQueryError` when the query has
    predicates (use :class:`~repro.core.twigm.TwigM` instead).

    An optional :class:`~repro.stream.recovery.ResourceLimits` bounds the
    document depth and total event count the machine will accept.
    """

    #: Stable engine identifier — shared by instrumented subclasses, used
    #: as the snapshot ``engine`` key and as the metrics ``engine`` label.
    machine_name = "pathm"

    def __init__(
        self,
        query: "str | QueryTree | Machine",
        sink: ResultSink | None = None,
        limits: ResourceLimits | None = None,
    ):
        if isinstance(query, Machine):
            self.machine = query
        else:
            if isinstance(query, str):
                query = compile_query(query)
            if query.has_branches():
                raise UnsupportedQueryError(
                    f"PathM evaluates XP{{/,//,*}} only; {query.source!r} has predicates"
                )
            self.machine = build_machine(query)
        self.sink = sink if sink is not None else CollectingSink()
        self._limits = limits
        self._event_count = 0
        # The machine of a path query is a single chain; per-node state is
        # a stack of levels.
        self._stacks: dict[int, list[int]] = {
            id(node): [] for node in self.machine.iter_nodes()
        }
        # Compiled dispatch: per-tag (node, stack, parent_stack) records
        # resolved once so the per-event loops skip id()-keyed lookups.
        self._plans: dict[str, list] = {
            tag: self._compile_plan(nodes)
            for tag, nodes in self.machine.dispatch.items()
        }
        self._wild_plan = self._compile_plan(self.machine.wildcards)
        self._return = self.machine.return_node

    def _miss_plan(self, tag: str) -> list:
        """Resolve (and cache) the plan for a tag outside the alphabet.

        Every unknown tag dispatches to the wildcard plan; aliasing it
        into ``_plans`` under the tag on first sight makes repeated
        unknown tags cost a single dict hit instead of a miss plus the
        fallback lookup.  The cache is bounded (:data:`TAG_CACHE_LIMIT`)
        so hostile tag churn cannot grow it without limit.
        """
        plan = self._wild_plan
        if len(self._plans) < TAG_CACHE_LIMIT:
            self._plans[tag] = plan
        return plan

    def _compile_plan(self, nodes) -> list:
        return [
            (
                node,
                self._stacks[id(node)],
                self._stacks[id(node.parent)] if node.parent is not None else None,
            )
            for node in nodes
        ]

    @property
    def results(self) -> list[int]:
        """Solutions confirmed so far (requires the default sink)."""
        if isinstance(self.sink, CollectingSink):
            return self.sink.results
        raise AttributeError("results are only collected by the default sink")

    def stack_of(self, node: MachineNode) -> list[int]:
        """The level stack of a machine node (read-only use)."""
        return self._stacks[id(node)]

    def reset(self) -> None:
        """Clear runtime state for a fresh run."""
        for stack in self._stacks.values():
            stack.clear()
        self._event_count = 0

    # -- checkpointing ----------------------------------------------------

    def snapshot_state(self) -> dict:
        """JSON-serializable capture of the per-node level stacks."""
        return {
            "stacks": [
                list(self._stacks[id(node)]) for node in self.machine.iter_nodes()
            ],
            "event_count": self._event_count,
        }

    def restore_state(self, state: dict) -> None:
        """Load a :meth:`snapshot_state` capture into this machine."""
        nodes = list(self.machine.iter_nodes())
        stacks = state["stacks"]
        if len(stacks) != len(nodes):
            raise CheckpointError(
                f"snapshot has {len(stacks)} machine stacks, machine has {len(nodes)}"
            )
        for node, levels in zip(nodes, stacks):
            stack = self._stacks[id(node)]
            stack.clear()
            stack.extend(levels)
        self._event_count = state.get("event_count", 0)

    # -- transitions ------------------------------------------------------

    def start_element(self, tag: str, level: int, node_id: int, attributes=None) -> None:
        """Push qualifying nodes; output immediately on the return node."""
        if self._limits is not None:
            self._limits.check("max_depth", level)
        plan = self._plans.get(tag)
        if plan is None:
            plan = self._miss_plan(tag)
            if not plan:
                return
        for node, stack, parent_stack in plan:
            if parent_stack is None:
                if not node.edge_satisfied(level):
                    continue
            elif not self._edge_exists(node, parent_stack, level):
                continue
            stack.append(level)
            if node.is_return:
                self.sink.emit(node_id)

    def characters(self, text: str, level: int | None = None) -> None:
        """No-op: character data carries no information for path queries.

        Present so the engine natively satisfies the
        :class:`~repro.stream.events.EventHandler` protocol.
        """

    def end_element(self, tag: str, level: int) -> None:
        """Pop entries whose element just closed, keeping stacks active-only."""
        plan = self._plans.get(tag)
        if plan is None:
            plan = self._miss_plan(tag)
        for node, stack, parent_stack in plan:
            if stack and stack[-1] == level:
                stack.pop()

    @staticmethod
    def _edge_exists(node: MachineNode, parent_stack: list[int], level: int) -> bool:
        if not parent_stack:
            return False
        if node.edge_op == EDGE_EQ:
            target = level - node.edge_dist
            # Levels are strictly increasing; check from the top down.
            for entry_level in reversed(parent_stack):
                if entry_level == target:
                    return True
                if entry_level < target:
                    return False
            return False
        # '>=': the bottom (smallest) entry decides existence.
        return parent_stack[0] <= level - node.edge_dist

    # -- event-stream driving ----------------------------------------------

    def as_handler(self):
        """Push-pipeline adapter (:mod:`repro.core.push`): the engine
        itself, or a limit-counting wrapper when limits are set."""
        if self._limits is None:
            return self
        return LimitCountingHandler(self)

    def feed(self, events: Iterable[Event]) -> None:
        """Process a batch of modified-SAX events."""
        limits = self._limits
        for event in events:
            if limits is not None:
                self._event_count += 1
                limits.check("max_total_events", self._event_count)
            if isinstance(event, StartElement):
                self.start_element(event.tag, event.level, event.node_id, event.attributes)
            elif isinstance(event, EndElement):
                self.end_element(event.tag, event.level)
            # Characters carry no information for path queries.

    def run(self, events: Iterable[Event]) -> list[int]:
        """Evaluate over a complete event stream; return solution ids."""
        self.feed(events)
        if isinstance(self.sink, CollectingSink):
            return self.sink.results
        return []


def evaluate_pathm(query: "str | QueryTree", events: Iterable[Event]) -> list[int]:
    """One-shot PathM evaluation: path query × event stream → ids."""
    return PathM(query).run(events)
