"""Multi-query evaluation: many XPath queries, one pass over the stream.

Streaming deployments (the stock feeds and sensor networks of the
paper's introduction) rarely run a single query: a dispatcher holds many
standing queries against one feed.  :class:`MultiQueryStream` parses the
stream once and fans each event out to one machine per query — the same
events, one sequential scan, per-query incremental results.

This is the natural library complement to the single-query engines; the
related-work systems that specialise in *huge* numbers of queries
(YFilter's shared automaton, XTrie) trade per-query machinery for shared
prefixes and are out of scope, as in the paper.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from repro.core.processor import XPathStream
from repro.core.results import CallbackSink
from repro.stream.events import Event
from repro.stream.tokenizer import XmlTokenizer, events_from
from repro.xpath.querytree import QueryTree


class MultiQueryStream:
    """Evaluate a set of named queries over one XML stream.

    Parameters
    ----------
    queries:
        Mapping of query name → XPath string (or compiled tree).
    on_match:
        Optional callback ``(name, node_id)`` fired as soon as any query
        confirms a solution.  Without it, results collect per query.

    Example::

        feed = MultiQueryStream({
            "cheap":  "//book[price < 30]//title",
            "recent": "//book[@year = '2006']//title",
        })
        results = feed.evaluate("catalog.xml")
        results["cheap"]   # -> [ids...]
    """

    def __init__(
        self,
        queries: Mapping[str, "str | QueryTree"],
        on_match: "Callable[[str, int], None] | None" = None,
    ):
        if not queries:
            raise ValueError("MultiQueryStream needs at least one query")
        self._streams: dict[str, XPathStream] = {}
        for name, query in queries.items():
            if on_match is None:
                self._streams[name] = XPathStream(query)
            else:
                callback = self._bind(on_match, name)
                self._streams[name] = XPathStream(query, on_match=callback)
        self._on_match = on_match
        self._tokenizer: XmlTokenizer | None = None

    @staticmethod
    def _bind(on_match: Callable[[str, int], None], name: str) -> Callable[[int], None]:
        def forward(node_id: int) -> None:
            on_match(name, node_id)

        return forward

    @property
    def names(self) -> list[str]:
        return list(self._streams)

    def engine_names(self) -> dict[str, str]:
        """Which machine evaluates each query (pathm/branchm/twigm)."""
        return {name: stream.engine_name for name, stream in self._streams.items()}

    # -- feeding ---------------------------------------------------------------

    def feed_events(self, events: Iterable[Event]) -> None:
        """Fan a batch of events out to every query's machine."""
        streams = list(self._streams.values())
        for event in events:
            for stream in streams:
                stream.engine.feed((event,))

    def feed_text(self, chunk: str) -> None:
        """Incrementally parse raw XML and fan the events out."""
        if self._tokenizer is None:
            self._tokenizer = XmlTokenizer()
        self.feed_events(self._tokenizer.feed(chunk))

    def close(self) -> "dict[str, list[int]] | None":
        """Finish an incremental feed; return collected results (if any)."""
        if self._tokenizer is not None:
            self._tokenizer.close()
            self._tokenizer = None
        return None if self._on_match is not None else self.results()

    # -- results ---------------------------------------------------------------

    def results(self) -> dict[str, list[int]]:
        """Per-query solutions collected so far (collect mode only)."""
        if self._on_match is not None:
            raise AttributeError("results are not collected when on_match is set")
        return {name: stream.results for name, stream in self._streams.items()}

    def evaluate(self, source) -> dict[str, list[int]]:
        """One-shot: evaluate every query over ``source`` in one pass.

        Returns per-query results in collect mode, ``{}`` in callback
        mode (matches were already delivered to ``on_match``).
        """
        self.feed_events(events_from(source))
        if self._on_match is not None:
            return {}
        return self.results()

    def reset(self) -> None:
        """Prepare every machine for a fresh document."""
        for stream in self._streams.values():
            stream.reset()
        self._tokenizer = None
