"""Multi-query evaluation — deprecated shim over :mod:`repro.multiq`.

:class:`MultiQueryStream` was the broadcast dispatcher: one machine per
query, every event delivered to every machine, O(#queries) work per
event.  It is superseded by :class:`repro.multiq.MultiQueryEngine`,
which canonicalizes/deduplicates queries and routes events through an
inverted tag index so per-event work is proportional to the number of
machines that can actually react.

This module keeps the historical public API — construction from a name →
query mapping, ``on_match(name, node_id)`` callback semantics,
``feed_events``/``feed_text``/``close``/``evaluate``/``results``/
``reset``, ``names`` and ``engine_names()`` — as a thin veneer over the
new engine.  Results are byte-identical (the dispatch change is provably
behaviour-preserving); only the per-event cost changed.  Constructing it
emits a :class:`DeprecationWarning`; new code should use
:class:`repro.multiq.MultiQueryEngine` directly.
"""

from __future__ import annotations

import warnings
from typing import Callable, Iterable, Mapping

from repro.multiq.engine import MultiQueryEngine
from repro.stream.events import Event
from repro.xpath.querytree import QueryTree


class MultiQueryStream:
    """Evaluate a set of named queries over one XML stream (deprecated).

    A compatibility veneer over :class:`repro.multiq.MultiQueryEngine`;
    see that class for the routed dispatch engine, live query
    add/remove, per-query resource limits, dispatcher snapshots, and
    dispatch statistics.

    Parameters
    ----------
    queries:
        Mapping of query name → XPath string (or compiled tree).
    on_match:
        Optional callback ``(name, node_id)`` fired as soon as any query
        confirms a solution.  Without it, results collect per query.

    Example::

        feed = MultiQueryStream({
            "cheap":  "//book[price < 30]//title",
            "recent": "//book[@year = '2006']//title",
        })
        results = feed.evaluate("catalog.xml")
        results["cheap"]   # -> [ids...]
    """

    def __init__(
        self,
        queries: Mapping[str, "str | QueryTree"],
        on_match: "Callable[[str, int], None] | None" = None,
    ):
        warnings.warn(
            "MultiQueryStream is deprecated; use repro.multiq.MultiQueryEngine",
            DeprecationWarning,
            stacklevel=2,
        )
        if not queries:
            raise ValueError("MultiQueryStream needs at least one query")
        self._engine = MultiQueryEngine(queries, on_match=on_match)
        self._on_match = on_match

    @property
    def names(self) -> list[str]:
        return self._engine.names

    def engine_names(self) -> dict[str, str]:
        """Which machine evaluates each query (pathm/branchm/twigm)."""
        return self._engine.engine_names()

    # -- feeding ---------------------------------------------------------------

    def feed_events(self, events: Iterable[Event]) -> None:
        """Dispatch a batch of events to every interested machine."""
        self._engine.feed_events(events)

    def feed_text(self, chunk: str) -> None:
        """Incrementally parse raw XML and dispatch the events."""
        self._engine.feed_text(chunk)

    def close(self) -> "dict[str, list[int]] | None":
        """Finish an incremental feed; return collected results (if any)."""
        results = self._engine.close()
        return None if self._on_match is not None else results

    # -- results ---------------------------------------------------------------

    def results(self) -> dict[str, list[int]]:
        """Per-query solutions collected so far (collect mode only)."""
        if self._on_match is not None:
            raise AttributeError("results are not collected when on_match is set")
        return self._engine.results()

    def evaluate(self, source) -> dict[str, list[int]]:
        """One-shot: evaluate every query over ``source`` in one pass.

        Returns per-query results in collect mode, ``{}`` in callback
        mode (matches were already delivered to ``on_match``).
        """
        results = self._engine.evaluate(source)
        if self._on_match is not None:
            return {}
        return results

    def reset(self) -> None:
        """Prepare every machine for a fresh document."""
        self._engine.reset()
