"""Instrumented TwigM: operation counters for the complexity experiments.

Theorem 4.4 bounds TwigM's running time by ``O((|Q| + R·B)·|Q|·|D|)``
(R = document depth, B = query branching factor).  The ablation
benchmarks validate that bound *empirically* by counting the actual
machine operations instead of trusting wall clocks:

* ``pushes`` / ``pops`` — stack entries created and retired;
* ``edge_checks`` — parent-stack probes during δs qualification;
* ``flag_sets`` — branch-match bits set during δe propagation;
* ``uploads`` — candidate-set unions;
* ``peak_entries`` — the compact encoding's maximum live size, the
  quantity the paper contrasts with the exponential number of pattern
  matches (2n entries standing in for n², figure 1).

:class:`InstrumentedTwigM` recomputes the transition functions with the
counters inline; it is deliberately a separate class so the production
engine pays nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.machine import EDGE_EQ, MachineNode
from repro.core.twigm import StackEntry, TwigM


@dataclass(slots=True)
class OperationCounts:
    """Counters of machine operations during one evaluation."""

    events: int = 0
    pushes: int = 0
    pops: int = 0
    edge_checks: int = 0
    flag_sets: int = 0
    uploads: int = 0
    peak_entries: int = 0
    emitted: int = 0

    def total_work(self) -> int:
        """A single scalar: all counted operations."""
        return (
            self.pushes + self.pops + self.edge_checks
            + self.flag_sets + self.uploads
        )


class InstrumentedTwigM(TwigM):
    """TwigM with per-operation counters (see :class:`OperationCounts`)."""

    def __init__(self, query, sink=None):
        super().__init__(query, sink=sink)
        self.counts = OperationCounts()
        self._live_entries = 0

    # -- instrumented transitions ------------------------------------------

    def start_element(self, tag, level, node_id, attributes=None):
        self.counts.events += 1
        if attributes is None:
            attributes = {}
        for node in self.machine.nodes_for_tag(tag):
            condition = node.compiled_condition
            if condition is None:
                if node.attribute_tests and not node.attributes_satisfied(attributes):
                    continue
            elif not condition.possible(attributes):
                continue
            if node.parent is None:
                self.counts.edge_checks += 1
                if not node.edge_satisfied(level):
                    continue
            elif not self._counted_edge_exists(node, level):
                continue
            entry = StackEntry(level)
            if node.value_tests or (condition is not None and condition.has_value_leaves):
                entry.text_parts = []
            if condition is not None:
                entry.attr_bits = condition.attr_bits(attributes)
            if node.is_return:
                entry.add_candidate(node_id)
            self._stacks[id(node)].append(entry)
            self.counts.pushes += 1
            self._live_entries += 1
            if self._live_entries > self.counts.peak_entries:
                self.counts.peak_entries = self._live_entries

    def _counted_edge_exists(self, node: MachineNode, level: int) -> bool:
        parent_stack = self._stacks[id(node.parent)]
        if not parent_stack:
            self.counts.edge_checks += 1
            return False
        if node.edge_op == EDGE_EQ:
            target = level - node.edge_dist
            for entry in reversed(parent_stack):
                self.counts.edge_checks += 1
                if entry.level == target:
                    return True
                if entry.level < target:
                    return False
            return False
        self.counts.edge_checks += 1
        return parent_stack[0].level <= level - node.edge_dist

    def end_element(self, tag, level):
        self.counts.events += 1
        for node in self.machine.nodes_for_tag(tag):
            stack = self._stacks[id(node)]
            if not stack or stack[-1].level != level:
                continue
            entry = stack.pop()
            self.counts.pops += 1
            self._live_entries -= 1
            condition = node.compiled_condition
            if condition is None:
                satisfied = entry.flags == node.complete_mask
                if satisfied and node.value_tests:
                    satisfied = all(
                        test.evaluate(entry.string_value()) for test in node.value_tests
                    )
            else:
                satisfied = condition.satisfied(
                    entry.flags,
                    entry.attr_bits,
                    entry.string_value() if condition.has_value_leaves else "",
                )
            if not satisfied:
                continue
            if node.is_return and self.machine.eager_return:
                if entry.candidates:
                    self.counts.emitted += len(entry.candidates)
                    self.sink.emit_all(sorted(entry.candidates))
                continue
            if node.parent is None:
                if entry.candidates:
                    self.counts.emitted += len(entry.candidates)
                    self.sink.emit_all(sorted(entry.candidates))
                continue
            self._counted_propagate(node, entry, level)

    def _counted_propagate(self, node: MachineNode, entry: StackEntry, level: int):
        parent_stack = self._stacks[id(node.parent)]
        bit = 1 << node.child_index
        if node.edge_op == EDGE_EQ:
            target = level - node.edge_dist
            for parent_entry in reversed(parent_stack):
                if parent_entry.level == target:
                    self.counts.flag_sets += 1
                    if entry.candidates:
                        self.counts.uploads += 1
                    parent_entry.upload_candidates(entry)
                    parent_entry.flags |= bit
                    break
                if parent_entry.level < target:
                    break
        else:
            threshold = level - node.edge_dist
            for parent_entry in parent_stack:
                if parent_entry.level > threshold:
                    break
                self.counts.flag_sets += 1
                if entry.candidates:
                    self.counts.uploads += 1
                parent_entry.upload_candidates(entry)
                parent_entry.flags |= bit
