"""DEPRECATED shim — machine instrumentation lives in :mod:`repro.obs`.

This module used to define an ablation-only ``InstrumentedTwigM`` clone
of the TwigM transition functions with operation counters inline.  The
clone drifted from the production engine (it ignored resource limits and
silently broke value tests) and is replaced by
:mod:`repro.obs.machines`, where :class:`~repro.obs.machines.ObsTwigM`
subclasses the *production* :class:`~repro.core.twigm.TwigM` and keeps
every behaviour — limits, candidate accounting, trackers, checkpoints —
while counting the same operations.  The obs engines additionally
publish their counters to a :class:`~repro.obs.metrics.MetricsRegistry`
when constructed with ``metrics=``.

For compatibility this module keeps the old import surface:

* :class:`OperationCounts` — re-exported from
  :mod:`repro.obs.machines` (its canonical home);
* :class:`InstrumentedTwigM` — now a thin adapter over
  :class:`~repro.obs.machines.ObsTwigM`, preserving the historical
  two-argument constructor.  The counting semantics are unchanged
  (``counts.events`` counts element events only; ``peak_entries`` is
  the live-entry high-water mark), so the complexity benchmarks keep
  measuring the same quantities.

New code should use :class:`repro.obs.machines.ObsTwigM` (or
``XPathStream(..., metrics=registry)``) directly.
"""

from __future__ import annotations

from repro.obs.machines import ObsTwigM, OperationCounts

__all__ = ["InstrumentedTwigM", "OperationCounts"]


class InstrumentedTwigM(ObsTwigM):
    """TwigM with per-operation counters (see :class:`OperationCounts`).

    Deprecated alias kept for the ablation benchmarks; it is exactly
    :class:`~repro.obs.machines.ObsTwigM` restricted to the historical
    ``(query, sink)`` constructor.
    """

    def __init__(self, query, sink=None):
        super().__init__(query, sink=sink)
