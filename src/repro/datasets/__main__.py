"""Entry point for ``python -m repro.datasets``."""

from repro.datasets.cli import main

raise SystemExit(main())
