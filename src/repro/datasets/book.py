"""The Book corpus: recursive synthetic data (the paper's first dataset).

The paper generates it with IBM's XML Generator from the Book DTD of the
XQuery use cases [30], setting ``NumberLevels = 20`` and
``MaxRepeats = 9``.  The DTD's essential property for the experiments is
**recursion** — ``section`` contains ``section`` — so tags repeat along
root-to-leaf paths and a single result node participates in *many*
pattern matches of ``//``-queries.  That is the regime where TwigM's
compact encoding pays off (figure 7(a)).

The Book DTD (XQuery use cases)::

    <!ELEMENT book    (title, author+, section+)>
    <!ELEMENT author  (last, first)>
    <!ELEMENT section (title, (p | figure | section)*)>
    <!ATTLIST section id CDATA #IMPLIED
                      difficulty CDATA #IMPLIED>
    <!ELEMENT figure  (title, image)>
    <!ATTLIST figure  width CDATA #REQUIRED height CDATA #REQUIRED>
    <!ELEMENT image   EMPTY>
    <!ATTLIST image   source CDATA #REQUIRED>
    <!ELEMENT title   (#PCDATA)>  <!ELEMENT p (#PCDATA)>
    <!ELEMENT last    (#PCDATA)>  <!ELEMENT first (#PCDATA)>

A corpus is a ``bib`` wrapper holding ``n_books`` random books.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.datasets.dtd import (
    AttributeDecl,
    Dtd,
    ElementDecl,
    Particle,
    choice_of,
    int_range,
    make_dtd,
    words,
)
from repro.datasets.generator import DtdGenerator, GeneratorConfig
from repro.stream.events import Event

_WORDS = (
    "stream", "query", "xpath", "twig", "match", "stack", "axis", "node",
    "pattern", "data", "xml", "predicate", "candidate", "branch", "level",
    "automaton", "parser", "index", "buffer", "schema",
)

_NAMES = (
    "Chen", "Davidson", "Zheng", "Suciu", "Koch", "Gottlob", "Olteanu",
    "Peng", "Chawathe", "Bruno", "Koudas", "Srivastava",
)

#: The defaults the paper reports for IBM's XML Generator.
PAPER_CONFIG = GeneratorConfig(seed=2006, number_levels=20, max_repeats=9)

#: Dampening applied to the recursive `section` alternative so that
#: MaxRepeats=9 at 20 levels yields megabyte- rather than exabyte-scale
#: documents (IBM's generator shapes recursion the same way).
SECTION_RECURSION_WEIGHT = 0.92


def book_dtd(recursion_weight: float = SECTION_RECURSION_WEIGHT) -> Dtd:
    """The Book DTD as a generator-ready content model."""
    title = words(_WORDS, 2, 5)
    return make_dtd(
        "book",
        [
            ElementDecl(
                "book",
                content=(
                    Particle(("title",)),
                    Particle(("author",), 1, 3),
                    Particle(("section",), 1, None),
                ),
            ),
            ElementDecl("title", text=title),
            ElementDecl(
                "author",
                content=(Particle(("last",)), Particle(("first",))),
            ),
            ElementDecl("last", text=choice_of(_NAMES)),
            ElementDecl("first", text=choice_of(_NAMES)),
            ElementDecl(
                "section",
                content=(
                    Particle(("title",)),
                    Particle(
                        ("p", "figure", "section"),
                        0,
                        None,
                        recursion_weight=recursion_weight,
                    ),
                ),
                attributes=(
                    AttributeDecl("id", int_range(1, 10_000)),
                    AttributeDecl(
                        "difficulty",
                        choice_of(("easy", "medium", "hard")),
                        presence=0.7,
                    ),
                ),
            ),
            ElementDecl("p", text=words(_WORDS, 4, 12)),
            ElementDecl(
                "figure",
                content=(Particle(("title",)), Particle(("image",))),
                attributes=(
                    AttributeDecl("width", int_range(100, 1600)),
                    AttributeDecl("height", int_range(100, 1200)),
                ),
            ),
            ElementDecl(
                "image",
                attributes=(AttributeDecl("source", words(_WORDS, 1, 1)),),
            ),
        ],
    )


def book_events(
    n_books: int = 200,
    config: GeneratorConfig = PAPER_CONFIG,
    recursion_weight: float = SECTION_RECURSION_WEIGHT,
) -> Iterator[Event]:
    """A Book corpus: ``<bib>`` wrapping ``n_books`` random books.

    Regenerating with the same arguments reproduces the identical event
    stream (the generator is fully seeded).
    """
    generator = DtdGenerator(book_dtd(recursion_weight), config)
    return generator.forest_events("bib", n_books)


def duplicated_book_events(
    n_books: int, factor: int, config: GeneratorConfig = PAPER_CONFIG
) -> Iterator[Event]:
    """The scalability corpus of figures 9 and 10: the Book data
    duplicated ``factor`` times (the paper duplicates the 9MB file 2-6x).

    Duplication preserves per-record structure while scaling |D|, exactly
    like concatenating copies of the generated file; ids keep increasing
    across copies so results remain well-defined.
    """
    base = list(book_events(n_books, config))
    next_id = itertools.count(1)
    wrapper, closing = base[0], base[-1]
    inner = base[1:-1]
    yield type(wrapper)(wrapper.tag, 1, next(next_id), wrapper.attributes)
    for _ in range(factor):
        for event in inner:
            if hasattr(event, "node_id"):
                yield type(event)(event.tag, event.level, next(next_id), event.attributes)
            else:
                yield event
    yield closing
