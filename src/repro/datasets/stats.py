"""Dataset feature statistics — the Figure 5 table of the paper.

Figure 5 characterises each corpus by size, element count, depth, and —
the property the whole paper turns on — whether the data is *recursive*
(some tag repeats along a root-to-leaf path).  :func:`collect_stats`
computes all of it in one streaming pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.stream.events import Characters, EndElement, Event, StartElement
from repro.stream.writer import escape_attribute, escape_text


@dataclass(frozen=True, slots=True)
class DatasetStats:
    """One row of the Figure 5 table."""

    size_bytes: int
    elements: int
    attributes: int
    text_bytes: int
    max_depth: int
    distinct_tags: int
    recursive: bool
    #: Tags observed repeating along some root-to-leaf path.
    recursive_tags: frozenset[str]

    @property
    def size_mb(self) -> float:
        return self.size_bytes / (1024 * 1024)

    def row(self, name: str) -> dict[str, object]:
        """A printable table row, shaped like the paper's figure 5."""
        return {
            "dataset": name,
            "size(MB)": round(self.size_mb, 2),
            "elements": self.elements,
            "attributes": self.attributes,
            "max depth": self.max_depth,
            "tags": self.distinct_tags,
            "recursive": "yes" if self.recursive else "no",
        }


def collect_stats(events: Iterable[Event]) -> DatasetStats:
    """Single-pass dataset feature collection.

    ``size_bytes`` is the serialized size of the stream (computed from
    the same escaping rules as :mod:`repro.stream.writer`, without
    materialising the text).
    """
    size = 0
    elements = 0
    attributes = 0
    text_bytes = 0
    max_depth = 0
    tags: set[str] = set()
    recursive_tags: set[str] = set()
    path_counts: dict[str, int] = {}
    for event in events:
        if isinstance(event, StartElement):
            elements += 1
            tags.add(event.tag)
            if event.level > max_depth:
                max_depth = event.level
            seen = path_counts.get(event.tag, 0)
            if seen:
                recursive_tags.add(event.tag)
            path_counts[event.tag] = seen + 1
            attributes += len(event.attributes)
            size += 2 + len(event.tag)  # <tag>
            for name, value in event.attributes.items():
                size += 4 + len(name) + len(escape_attribute(value))
        elif isinstance(event, EndElement):
            path_counts[event.tag] -= 1
            size += 3 + len(event.tag)  # </tag>
        elif isinstance(event, Characters):
            escaped = len(escape_text(event.text))
            size += escaped
            text_bytes += escaped
    return DatasetStats(
        size_bytes=size,
        elements=elements,
        attributes=attributes,
        text_bytes=text_bytes,
        max_depth=max_depth,
        distinct_tags=len(tags),
        recursive=bool(recursive_tags),
        recursive_tags=frozenset(recursive_tags),
    )
