"""A Treebank-style corpus: extreme recursion (stress extension).

The paper's recursive corpus (Book) nests one tag (`section`) to depth
~20.  The classic stress corpus for recursive XML is the Penn Treebank
conversion — parse trees where *many* tags (`S`, `NP`, `VP`, `SBAR`, …)
repeat along paths and depths reach the mid-thirties.  The original is
licence-encumbered; this generator reproduces its structural profile
with a small probabilistic phrase-structure grammar:

* sentences (`S`) expand into noun/verb phrases that re-embed clauses
  (`SBAR → S`), giving multi-tag recursion;
* depth is controlled by the grammar's decay and the generator's
  ``number_levels`` cap;
* leaves are part-of-speech tags (`NN`, `VB`, `DT`, …) holding words.

Useful wherever the Book corpus's single-tag recursion is too tame:
worst-case multi-match behaviour with several recursive tags at once.
This corpus is an *extension* — no paper figure uses it — and feeds the
deep-recursion ablation benchmarks.
"""

from __future__ import annotations

from typing import Iterator

from repro.datasets.dtd import Dtd, ElementDecl, Particle, choice_of, make_dtd
from repro.datasets.generator import DtdGenerator, GeneratorConfig
from repro.stream.events import Event

_NOUNS = ("time", "query", "stream", "tree", "match", "parser", "stack")
_VERBS = ("scans", "matches", "emits", "prunes", "folds", "buffers")
_DETS = ("the", "a", "every", "some")
_ADJS = ("fast", "lazy", "deep", "recursive", "compact")
_PREPS = ("of", "over", "within", "without")

#: Depth-rich defaults: treebank trees run much deeper than Book's.
DEFAULT_CONFIG = GeneratorConfig(seed=86, number_levels=36, max_repeats=3)

#: Decay for the re-embedding alternatives; lower = shallower corpora.
#: 0.97 reaches depth ~31 at 200 sentences — real Treebank territory.
CLAUSE_WEIGHT = 0.97


def treebank_dtd(clause_weight: float = CLAUSE_WEIGHT) -> Dtd:
    """A probabilistic phrase-structure grammar as a content model."""
    return make_dtd(
        "S",
        [
            ElementDecl(
                "S",
                content=(
                    Particle(("NP",)),
                    Particle(("VP",)),
                ),
            ),
            ElementDecl(
                "NP",
                content=(
                    Particle(("DT",), 0, 1),
                    Particle(("JJ",), 0, 2),
                    Particle(("NN",)),
                    # Recursive attachments: PP modifiers and relative
                    # clauses; both re-embed phrase tags.
                    Particle(("PP", "SBAR"), 0, 1, recursion_weight=clause_weight),
                ),
            ),
            ElementDecl(
                "VP",
                content=(
                    Particle(("VB",)),
                    Particle(("NP", "PP", "SBAR"), 0, 2, recursion_weight=clause_weight),
                ),
            ),
            ElementDecl(
                "PP",
                content=(Particle(("IN",)), Particle(("NP",))),
            ),
            ElementDecl(
                "SBAR",
                content=(Particle(("S",),),),
            ),
            ElementDecl("DT", text=choice_of(_DETS)),
            ElementDecl("JJ", text=choice_of(_ADJS)),
            ElementDecl("NN", text=choice_of(_NOUNS)),
            ElementDecl("VB", text=choice_of(_VERBS)),
            ElementDecl("IN", text=choice_of(_PREPS)),
        ],
    )


def treebank_events(
    n_sentences: int = 200,
    config: GeneratorConfig = DEFAULT_CONFIG,
    clause_weight: float = CLAUSE_WEIGHT,
) -> Iterator[Event]:
    """A ``corpus`` of ``n_sentences`` random parse trees."""
    generator = DtdGenerator(treebank_dtd(clause_weight), config)
    return generator.forest_events("corpus", n_sentences)
