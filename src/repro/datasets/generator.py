"""DTD-driven random document generation (the IBM XML Generator stand-in).

:class:`GeneratorConfig` mirrors the two parameters the paper sets on
IBM's XML Generator — ``number_levels`` (= NumberLevels, the maximum
document depth; the paper uses 20) and ``max_repeats`` (= MaxRepeats, the
repetition cap; the paper uses 9) — plus the random seed.

:class:`DtdGenerator` expands a :class:`~repro.datasets.dtd.Dtd` into a
stream of modified-SAX events, **without materialising the document**:
the generator is itself a streaming source, so arbitrarily large corpora
cost constant memory.  Node ids are assigned in document order, matching
the tokenizer's numbering, so results computed over generated events and
over the serialized file agree.

Termination with recursive DTDs: an option that can recurse is selected
with weight ``recursion_weight ** depth`` (see
:class:`~repro.datasets.dtd.Particle`), and expansion is hard-capped at
``number_levels`` — at the cap, element children are skipped entirely
(the IBM generator's NumberLevels behaves the same way).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.datasets.dtd import Dtd, ElementDecl
from repro.stream.events import Characters, EndElement, Event, StartElement


@dataclass(frozen=True, slots=True)
class GeneratorConfig:
    """Knobs of the generator, named after IBM XML Generator parameters."""

    seed: int = 42
    number_levels: int = 20
    max_repeats: int = 9


class DtdGenerator:
    """Expands a DTD into random modified-SAX event streams."""

    def __init__(self, dtd: Dtd, config: GeneratorConfig | None = None):
        self._dtd = dtd
        self._config = config if config is not None else GeneratorConfig()
        self._recursive = dtd.recursive_names()

    @property
    def config(self) -> GeneratorConfig:
        return self._config

    def events(self) -> Iterator[Event]:
        """One random document (a fresh RNG seeded from the config)."""
        rng = random.Random(self._config.seed)
        counter = _Counter()
        yield from self._expand(self._dtd.root, 1, rng, counter)

    def forest_events(self, wrapper: str, count: int) -> Iterator[Event]:
        """``count`` random roots under a synthetic ``wrapper`` element.

        This is how multi-record corpora are built (e.g. a ``bib`` of many
        ``book``s): each record draws fresh randomness from one seeded RNG,
        so the corpus is reproducible yet heterogeneous.
        """
        rng = random.Random(self._config.seed)
        counter = _Counter()
        yield StartElement(wrapper, 1, counter.next_id(), {})
        for _ in range(count):
            yield from self._expand(self._dtd.root, 2, rng, counter)
        yield EndElement(wrapper, 1)

    # -- expansion ---------------------------------------------------------

    def _expand(
        self, name: str, level: int, rng: random.Random, counter: "_Counter"
    ) -> Iterator[Event]:
        decl = self._dtd.declaration(name)
        attributes = self._sample_attributes(decl, rng)
        yield StartElement(name, level, counter.next_id(), attributes)
        if decl.text is not None:
            yield Characters(decl.text(rng), level)
        if level < self._config.number_levels:
            for particle in decl.content:
                cap = particle.max_count
                if cap is None:
                    cap = self._config.max_repeats
                count = rng.randint(particle.min_count, cap)
                for _ in range(count):
                    option = self._choose_option(particle, level, rng)
                    if option is not None:
                        yield from self._expand(option, level + 1, rng, counter)
        yield EndElement(name, level)

    def _choose_option(self, particle, level: int, rng: random.Random) -> str | None:
        """Pick an option, decaying recursive alternatives with depth.

        Recursive options carry weight ``recursion_weight ** level``
        against 1.0 for non-recursive siblings.  When *every* option is
        recursive the decay instead acts as an acceptance probability, so
        purely-recursive particles (``section*``) still dampen with depth.
        """
        options = particle.options
        decay = particle.recursion_weight
        if decay >= 1.0:
            return options[0] if len(options) == 1 else rng.choice(options)
        recursive = [option in self._recursive for option in options]
        if all(recursive):
            if rng.random() >= decay ** level:
                return None
            return options[0] if len(options) == 1 else rng.choice(options)
        weights = [decay ** level if is_rec else 1.0 for is_rec in recursive]
        pick = rng.random() * sum(weights)
        acc = 0.0
        for option, weight in zip(options, weights):
            acc += weight
            if pick <= acc:
                return option
        return options[-1]

    @staticmethod
    def _sample_attributes(decl: ElementDecl, rng: random.Random) -> dict[str, str]:
        attributes: dict[str, str] = {}
        for attr in decl.attributes:
            if attr.presence >= 1.0 or rng.random() < attr.presence:
                attributes[attr.name] = attr.value(rng)
        return attributes


class _Counter:
    """Document-order node id assignment."""

    __slots__ = ("_next",)

    def __init__(self) -> None:
        self._next = 1

    def next_id(self) -> int:
        node_id = self._next
        self._next += 1
        return node_id
