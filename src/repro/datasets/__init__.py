"""Synthetic corpora reproducing the paper's three datasets (figure 5).

* :mod:`repro.datasets.book` — recursive Book data (IBM XML Generator
  stand-in, Book DTD, NumberLevels=20, MaxRepeats=9).
* :mod:`repro.datasets.xmark` — XMark-style auction benchmark data.
* :mod:`repro.datasets.protein` — large flat Protein Sequence Database
  stand-in.
* :mod:`repro.datasets.dtd` / :mod:`repro.datasets.generator` — the
  DTD-driven streaming generator engine behind them.
* :mod:`repro.datasets.stats` — the figure 5 feature table.
"""

from repro.datasets.book import (
    PAPER_CONFIG,
    SECTION_RECURSION_WEIGHT,
    book_dtd,
    book_events,
    duplicated_book_events,
)
from repro.datasets.dtd import (
    AttributeDecl,
    Dtd,
    ElementDecl,
    Particle,
    choice_of,
    constant,
    int_range,
    make_dtd,
    words,
)
from repro.datasets.generator import DtdGenerator, GeneratorConfig
from repro.datasets.protein import protein_dtd, protein_events
from repro.datasets.stats import DatasetStats, collect_stats
from repro.datasets.treebank import treebank_dtd, treebank_events
from repro.datasets.xmark import xmark_dtd, xmark_events

__all__ = [
    "PAPER_CONFIG",
    "SECTION_RECURSION_WEIGHT",
    "AttributeDecl",
    "DatasetStats",
    "Dtd",
    "DtdGenerator",
    "ElementDecl",
    "GeneratorConfig",
    "Particle",
    "book_dtd",
    "book_events",
    "choice_of",
    "collect_stats",
    "constant",
    "duplicated_book_events",
    "int_range",
    "make_dtd",
    "protein_dtd",
    "protein_events",
    "treebank_dtd",
    "treebank_events",
    "words",
    "xmark_dtd",
    "xmark_events",
]
