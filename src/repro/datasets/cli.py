"""``python -m repro.datasets`` — generate corpora and inspect files.

Generate any of the built-in corpora to an XML file::

    python -m repro.datasets generate book --records 200 -o book.xml
    python -m repro.datasets generate xmark --scale 4 -o auction.xml
    python -m repro.datasets generate protein --records 1000 -o pir.xml
    python -m repro.datasets generate treebank --records 500 -o tb.xml

Print the figure-5 feature row for any XML file (generated or not)::

    python -m repro.datasets stats book.xml other.xml
"""

from __future__ import annotations

import argparse
import sys

from repro.datasets.book import book_events
from repro.datasets.generator import GeneratorConfig
from repro.datasets.protein import protein_events
from repro.datasets.stats import collect_stats
from repro.datasets.treebank import treebank_events
from repro.datasets.xmark import xmark_events
from repro.errors import ReproError
from repro.stream.tokenizer import parse_file
from repro.stream.writer import write_events

DATASETS = ("book", "xmark", "protein", "treebank")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.datasets",
        description="Corpus generation and inspection for the TwigM reproduction.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="write a corpus to a file")
    generate.add_argument("dataset", choices=DATASETS)
    generate.add_argument(
        "--records",
        type=int,
        default=100,
        help="books / protein entries / sentences (ignored by xmark)",
    )
    generate.add_argument(
        "--scale", type=float, default=1.0, help="xmark scale factor"
    )
    generate.add_argument("--seed", type=int, default=None, help="override the RNG seed")
    generate.add_argument("-o", "--output", required=True, help="output XML path")
    generate.add_argument(
        "--stats", action="store_true", help="print the feature row afterwards"
    )

    stats = commands.add_parser("stats", help="print figure-5 feature rows")
    stats.add_argument("files", nargs="+", help="XML files to scan")
    return parser


def _producer(args):
    if args.dataset == "book":
        config = _config(args, base=None)
        if config is None:
            return lambda: book_events(args.records)
        return lambda: book_events(args.records, config=config)
    if args.dataset == "xmark":
        from repro.datasets.xmark import DEFAULT_CONFIG

        config = _config(args, base=DEFAULT_CONFIG)
        if config is None:
            return lambda: xmark_events(args.scale)
        return lambda: xmark_events(args.scale, config=config)
    if args.dataset == "protein":
        from repro.datasets.protein import DEFAULT_CONFIG

        config = _config(args, base=DEFAULT_CONFIG)
        if config is None:
            return lambda: protein_events(args.records)
        return lambda: protein_events(args.records, config=config)
    from repro.datasets.treebank import DEFAULT_CONFIG

    config = _config(args, base=DEFAULT_CONFIG)
    if config is None:
        return lambda: treebank_events(args.records)
    return lambda: treebank_events(args.records, config=config)


def _config(args, base: "GeneratorConfig | None") -> "GeneratorConfig | None":
    if args.seed is None:
        return None
    if base is None:
        from repro.datasets.book import PAPER_CONFIG as base  # type: ignore[no-redef]
    return GeneratorConfig(
        seed=args.seed,
        number_levels=base.number_levels,
        max_repeats=base.max_repeats,
    )


def _print_stats(name: str, events) -> None:
    stats = collect_stats(events)
    row = stats.row(name)
    print("  ".join(f"{key}={value}" for key, value in row.items()))


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "generate":
            producer = _producer(args)
            with open(args.output, "w", encoding="utf-8") as handle:
                write_events(producer(), handle)
            print(f"wrote {args.output}")
            if args.stats:
                _print_stats(args.output, parse_file(args.output))
            return 0
        for path in args.files:
            _print_stats(path, parse_file(path))
        return 0
    except (ReproError, OSError) as exc:
        print(f"repro.datasets: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
