"""The Protein corpus: large, flat, non-recursive real-data stand-in.

The paper's third dataset is the Georgetown Protein Information Resource
Protein Sequence Database [15] — 75MB of many small, shallow, regular
``ProteinEntry`` records.  The experiments use it purely as the *large,
non-recursive* corpus, where streaming engines must shine on raw
throughput and DOM loaders exhaust memory (XMLTaskForce fails on it in
figure 8(c)).  The generator below reproduces that structural profile
with the published element vocabulary of the real database.
"""

from __future__ import annotations

from typing import Iterator

from repro.datasets.dtd import (
    AttributeDecl,
    Dtd,
    ElementDecl,
    Particle,
    choice_of,
    int_range,
    make_dtd,
    words,
)
from repro.datasets.generator import DtdGenerator, GeneratorConfig
from repro.stream.events import Event

_ORGANISMS = (
    "Homo sapiens", "Mus musculus", "Escherichia coli",
    "Saccharomyces cerevisiae", "Drosophila melanogaster",
    "Arabidopsis thaliana", "Rattus norvegicus",
)

_KEYWORDS = (
    "kinase", "transferase", "membrane", "hydrolase", "transport",
    "binding", "receptor", "oxidoreductase", "ribosomal", "polymerase",
    "zinc", "heme", "ATP", "signal", "transcription",
)

_AUTHORS = (
    "Barker, W.C.", "Garavelli, J.S.", "Huang, H.", "McGarvey, P.B.",
    "Orcutt, B.C.", "Srinivasarao, G.Y.", "Xiao, C.", "Yeh, L.S.",
)

_RESIDUES = "ACDEFGHIKLMNPQRSTVWY"


def _sequence(rng) -> str:
    return "".join(rng.choice(_RESIDUES) for _ in range(rng.randint(60, 240)))


#: Shallow documents: entries bottom out around depth 7.
DEFAULT_CONFIG = GeneratorConfig(seed=15, number_levels=8, max_repeats=4)


def protein_dtd() -> Dtd:
    """The ProteinEntry content model (PIR-PSD element vocabulary)."""
    return make_dtd(
        "ProteinEntry",
        [
            ElementDecl(
                "ProteinEntry",
                content=(
                    Particle(("header",)),
                    Particle(("protein",)),
                    Particle(("organism",)),
                    Particle(("reference",), 1, 4),
                    Particle(("classification",), 0, 1),
                    Particle(("keywords",), 0, 1),
                    Particle(("summary",)),
                    Particle(("sequence",)),
                ),
                attributes=(AttributeDecl("id", int_range(1, 300_000)),),
            ),
            ElementDecl(
                "header",
                content=(
                    Particle(("uid",)),
                    Particle(("accession",), 1, 3),
                    Particle(("created_date",)),
                    Particle(("seq-rev_date",)),
                ),
            ),
            ElementDecl("uid", text=words(_KEYWORDS, 1, 1)),
            ElementDecl("accession", text=int_range(100_000, 999_999)),
            ElementDecl("created_date", text=int_range(1985, 2001)),
            ElementDecl("seq-rev_date", text=int_range(1990, 2001)),
            ElementDecl(
                "protein",
                content=(Particle(("name",)), Particle(("alt-name",), 0, 2)),
            ),
            ElementDecl("name", text=words(_KEYWORDS, 2, 4)),
            ElementDecl("alt-name", text=words(_KEYWORDS, 2, 4)),
            ElementDecl(
                "organism",
                content=(
                    Particle(("source",)),
                    Particle(("common",), 0, 1),
                    Particle(("formal",)),
                ),
            ),
            ElementDecl("source", text=choice_of(_ORGANISMS)),
            ElementDecl("common", text=choice_of(("human", "mouse", "yeast", "rat"))),
            ElementDecl("formal", text=choice_of(_ORGANISMS)),
            ElementDecl(
                "reference",
                content=(Particle(("refinfo",)), Particle(("accinfo",), 0, 1)),
            ),
            ElementDecl(
                "refinfo",
                content=(
                    Particle(("authors",)),
                    Particle(("citation",)),
                    Particle(("year",)),
                    Particle(("title",)),
                ),
                attributes=(AttributeDecl("refid", int_range(1, 999_999)),),
            ),
            ElementDecl("authors", content=(Particle(("author",), 1, 4),)),
            ElementDecl("author", text=choice_of(_AUTHORS)),
            ElementDecl(
                "citation",
                text=words(_KEYWORDS, 3, 6),
                attributes=(AttributeDecl("volume", int_range(1, 400), presence=0.8),),
            ),
            ElementDecl("year", text=int_range(1980, 2001)),
            ElementDecl("title", text=words(_KEYWORDS, 4, 9)),
            ElementDecl(
                "accinfo",
                content=(Particle(("mol-type",), 0, 1),),
                attributes=(AttributeDecl("acc", int_range(100_000, 999_999)),),
            ),
            ElementDecl("mol-type", text=choice_of(("DNA", "mRNA", "protein"))),
            ElementDecl(
                "classification",
                content=(Particle(("superfamily",), 1, 2),),
            ),
            ElementDecl("superfamily", text=words(_KEYWORDS, 2, 3)),
            ElementDecl("keywords", content=(Particle(("keyword",), 1, 5),)),
            ElementDecl("keyword", text=choice_of(_KEYWORDS)),
            ElementDecl(
                "summary",
                content=(Particle(("length",)), Particle(("type",))),
            ),
            ElementDecl("length", text=int_range(60, 240)),
            ElementDecl("type", text=choice_of(("complete", "fragment"))),
            ElementDecl("sequence", text=_sequence),
        ],
    )


def protein_events(
    n_entries: int = 500, config: GeneratorConfig = DEFAULT_CONFIG
) -> Iterator[Event]:
    """A ``ProteinDatabase`` wrapping ``n_entries`` random entries."""
    generator = DtdGenerator(protein_dtd(), config)
    return generator.forest_events("ProteinDatabase", n_entries)
