"""The Benchmark corpus: an XMark-style auction site (second dataset).

The paper's second dataset comes from the XMark benchmark generator [31]
with its default auction DTD.  The original binary is unavailable; this
module declares the auction DTD's element vocabulary and structure for
our DTD-driven generator, preserving what the experiments use:

* the **standard element names** (`site`, `regions`, `people`, `person`,
  `open_auction`, `closed_auction`, `item`, `annotation`, `keyword`, …)
  so XMark-derived benchmark queries run unchanged;
* **mostly non-recursive** structure with one contained recursion —
  ``parlist/listitem`` inside rich-text descriptions — mirroring the real
  DTD (XMark data is "shallowly recursive" compared to Book);
* wide fan-out: many small sibling records under a few hubs.

``scale`` multiplies the record counts the way XMark's ``-f`` factor
scales its output size.
"""

from __future__ import annotations

from typing import Iterator

from repro.datasets.dtd import (
    AttributeDecl,
    Dtd,
    ElementDecl,
    Particle,
    choice_of,
    int_range,
    make_dtd,
    words,
)
from repro.datasets.generator import DtdGenerator, GeneratorConfig
from repro.stream.events import Event

_WORDS = (
    "auction", "bid", "item", "seller", "reserve", "ship", "category",
    "gold", "silver", "antique", "rare", "mint", "vintage", "lot",
    "estate", "auctioneer", "gavel", "provenance", "appraisal", "bidder",
)

_CITIES = ("Lisbon", "Osaka", "Quito", "Tunis", "Perth", "Oslo", "Lima")
_COUNTRIES = ("Portugal", "Japan", "Ecuador", "Tunisia", "Australia", "Norway", "Peru")
_NAMES = ("Ayo", "Mei", "Sven", "Lucia", "Tariq", "Nadia", "Piotr", "Ines")

#: Default generator settings for the auction corpus (non-recursive
#: except parlist, so NumberLevels only guards the rich-text nesting).
DEFAULT_CONFIG = GeneratorConfig(seed=31, number_levels=16, max_repeats=4)

_PARLIST_WEIGHT = 0.9


def _scaled(count: int, scale: float) -> int:
    return max(1, round(count * scale))


def xmark_dtd(scale: float = 1.0) -> Dtd:
    """The auction-site content model at a given scale factor."""
    text = words(_WORDS, 3, 10)
    name = choice_of(_NAMES)
    regions = ("africa", "asia", "australia", "europe", "namerica", "samerica")
    return make_dtd(
        "site",
        [
            ElementDecl(
                "site",
                content=(
                    Particle(("regions",)),
                    Particle(("categories",)),
                    Particle(("people",)),
                    Particle(("open_auctions",)),
                    Particle(("closed_auctions",)),
                ),
            ),
            ElementDecl("regions", content=tuple(Particle((r,)) for r in regions)),
            *[
                ElementDecl(
                    region,
                    content=(
                        Particle(("item",), _scaled(4, scale), _scaled(10, scale)),
                    ),
                )
                for region in regions
            ],
            ElementDecl(
                "item",
                content=(
                    Particle(("location",)),
                    Particle(("quantity",)),
                    Particle(("name",)),
                    Particle(("payment",)),
                    Particle(("description",)),
                    Particle(("shipping",)),
                    Particle(("incategory",), 1, 3),
                    Particle(("mailbox",)),
                ),
                attributes=(AttributeDecl("id", int_range(1, 10_000_000)),),
            ),
            ElementDecl("location", text=choice_of(_COUNTRIES)),
            ElementDecl("quantity", text=int_range(1, 10)),
            ElementDecl("name", text=words(_WORDS, 2, 4)),
            ElementDecl("payment", text=choice_of(("Cash", "Check", "Creditcard"))),
            ElementDecl(
                "description",
                content=(Particle(("text", "parlist"),),),
            ),
            ElementDecl("text", text=words(_WORDS, 6, 18)),
            ElementDecl(
                "parlist",
                content=(
                    Particle(
                        ("listitem",), 1, 3, recursion_weight=_PARLIST_WEIGHT
                    ),
                ),
            ),
            ElementDecl(
                "listitem",
                content=(
                    Particle(
                        ("text", "parlist"), 1, 1, recursion_weight=_PARLIST_WEIGHT
                    ),
                ),
            ),
            ElementDecl("shipping", text=choice_of(("Will ship only within country", "Will ship internationally"))),
            ElementDecl(
                "incategory",
                attributes=(AttributeDecl("category", int_range(1, 1000)),),
            ),
            ElementDecl("mailbox", content=(Particle(("mail",), 0, 2),)),
            ElementDecl(
                "mail",
                content=(
                    Particle(("from",)),
                    Particle(("to",)),
                    Particle(("date",)),
                    Particle(("text",)),
                ),
            ),
            ElementDecl("from", text=name),
            ElementDecl("to", text=name),
            ElementDecl("date", text=int_range(1999, 2006)),
            ElementDecl(
                "categories",
                content=(Particle(("category",), _scaled(5, scale), _scaled(10, scale)),),
            ),
            ElementDecl(
                "category",
                content=(Particle(("name",)), Particle(("description",))),
                attributes=(AttributeDecl("id", int_range(1, 1000)),),
            ),
            ElementDecl(
                "people",
                content=(Particle(("person",), _scaled(10, scale), _scaled(25, scale)),),
            ),
            ElementDecl(
                "person",
                content=(
                    Particle(("name",)),
                    Particle(("emailaddress",)),
                    Particle(("phone",), 0, 1),
                    Particle(("address",), 0, 1),
                    Particle(("creditcard",), 0, 1),
                    Particle(("profile",), 0, 1),
                    Particle(("watches",), 0, 1),
                ),
                attributes=(AttributeDecl("id", int_range(1, 10_000_000)),),
            ),
            ElementDecl("emailaddress", text=words(_WORDS, 1, 1)),
            ElementDecl("phone", text=int_range(1_000_000, 9_999_999)),
            ElementDecl(
                "address",
                content=(
                    Particle(("street",)),
                    Particle(("city",)),
                    Particle(("country",)),
                    Particle(("zipcode",)),
                ),
            ),
            ElementDecl("street", text=words(_WORDS, 2, 3)),
            ElementDecl("city", text=choice_of(_CITIES)),
            ElementDecl("country", text=choice_of(_COUNTRIES)),
            ElementDecl("zipcode", text=int_range(10_000, 99_999)),
            ElementDecl("creditcard", text=int_range(10 ** 15, 10 ** 16 - 1)),
            ElementDecl(
                "profile",
                content=(
                    Particle(("interest",), 0, 3),
                    Particle(("education",), 0, 1),
                    Particle(("gender",), 0, 1),
                    Particle(("business",)),
                    Particle(("age",), 0, 1),
                ),
                attributes=(AttributeDecl("income", int_range(9_000, 120_000)),),
            ),
            ElementDecl(
                "interest",
                attributes=(AttributeDecl("category", int_range(1, 1000)),),
            ),
            ElementDecl("education", text=choice_of(("High School", "College", "Graduate School"))),
            ElementDecl("gender", text=choice_of(("male", "female"))),
            ElementDecl("business", text=choice_of(("Yes", "No"))),
            ElementDecl("age", text=int_range(18, 90)),
            ElementDecl(
                "watches",
                content=(Particle(("watch",), 1, 3),),
            ),
            ElementDecl(
                "watch",
                attributes=(AttributeDecl("open_auction", int_range(1, 10_000)),),
            ),
            ElementDecl(
                "open_auctions",
                content=(
                    Particle(("open_auction",), _scaled(8, scale), _scaled(20, scale)),
                ),
            ),
            ElementDecl(
                "open_auction",
                content=(
                    Particle(("initial",)),
                    Particle(("reserve",), 0, 1),
                    Particle(("bidder",), 0, 5),
                    Particle(("current",)),
                    Particle(("itemref",)),
                    Particle(("seller",)),
                    Particle(("annotation",)),
                    Particle(("quantity",)),
                    Particle(("type",)),
                    Particle(("interval",)),
                ),
                attributes=(AttributeDecl("id", int_range(1, 10_000)),),
            ),
            ElementDecl("initial", text=int_range(1, 300)),
            ElementDecl("reserve", text=int_range(50, 900)),
            ElementDecl(
                "bidder",
                content=(
                    Particle(("date",)),
                    Particle(("time",)),
                    Particle(("personref",)),
                    Particle(("increase",)),
                ),
            ),
            ElementDecl("time", text=choice_of(("09:14:02", "13:30:55", "21:07:41"))),
            ElementDecl(
                "personref",
                attributes=(AttributeDecl("person", int_range(1, 10_000)),),
            ),
            ElementDecl("increase", text=int_range(1, 50)),
            ElementDecl("current", text=int_range(1, 1200)),
            ElementDecl(
                "itemref",
                attributes=(AttributeDecl("item", int_range(1, 10_000)),),
            ),
            ElementDecl(
                "seller",
                attributes=(AttributeDecl("person", int_range(1, 10_000)),),
            ),
            ElementDecl(
                "annotation",
                content=(
                    Particle(("author",)),
                    Particle(("description",)),
                    Particle(("happiness",)),
                ),
            ),
            ElementDecl(
                "author",
                attributes=(AttributeDecl("person", int_range(1, 10_000)),),
            ),
            ElementDecl("happiness", text=int_range(1, 10)),
            ElementDecl("interval", content=(Particle(("start",)), Particle(("end",)))),
            ElementDecl("start", text=int_range(1999, 2005)),
            ElementDecl("end", text=int_range(2000, 2006)),
            ElementDecl("type", text=choice_of(("Regular", "Featured", "Dutch"))),
            ElementDecl(
                "closed_auctions",
                content=(
                    Particle(("closed_auction",), _scaled(8, scale), _scaled(20, scale)),
                ),
            ),
            ElementDecl(
                "closed_auction",
                content=(
                    Particle(("seller",)),
                    Particle(("buyer",)),
                    Particle(("itemref",)),
                    Particle(("price",)),
                    Particle(("date",)),
                    Particle(("quantity",)),
                    Particle(("type",)),
                    Particle(("annotation",)),
                ),
            ),
            ElementDecl(
                "buyer",
                attributes=(AttributeDecl("person", int_range(1, 10_000)),),
            ),
            ElementDecl("price", text=int_range(1, 1500)),
        ],
    )


def xmark_events(
    scale: float = 1.0, config: GeneratorConfig = DEFAULT_CONFIG
) -> Iterator[Event]:
    """One auction-site document at the given scale factor."""
    return DtdGenerator(xmark_dtd(scale), config).events()
