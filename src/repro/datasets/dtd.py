"""A miniature DTD content model for the synthetic data generators.

The paper's Book corpus comes from IBM's XML Generator [18], which takes
a DTD plus parameters — notably ``NumberLevels`` (maximum document depth)
and ``MaxRepeats`` (maximum repetitions of an element within its parent).
This module models just enough of a DTD to drive an equivalent generator:

* :class:`ElementDecl` — one element type: its content particles, its
  attributes, and an optional text generator;
* :class:`Particle` — a repeated (choice of) child element(s):
  ``(a | b | c){min..max}``.  ``max_count=None`` defers to the
  generator's ``MaxRepeats``.  ``recursion_weight`` lets recursive
  alternatives be chosen with a depth-decaying probability so that
  recursive DTDs (the Book ``section``) produce finite documents with a
  controllable depth profile;
* :class:`AttributeDecl` — an attribute with a value sampler and a
  presence probability;
* :class:`Dtd` — the element table plus the root element name.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

#: A sampler drawing a string from the RNG (attribute values, text).
Sampler = Callable[[random.Random], str]


def constant(value: str) -> Sampler:
    """A sampler always returning ``value``."""
    return lambda rng: value


def choice_of(values: Sequence[str]) -> Sampler:
    """A sampler drawing uniformly from ``values``."""
    values = list(values)
    return lambda rng: rng.choice(values)


def int_range(low: int, high: int) -> Sampler:
    """A sampler drawing a decimal integer in [low, high]."""
    return lambda rng: str(rng.randint(low, high))


def words(pool: Sequence[str], low: int, high: int) -> Sampler:
    """A sampler drawing ``low..high`` space-joined words from ``pool``."""
    pool = list(pool)
    return lambda rng: " ".join(rng.choice(pool) for _ in range(rng.randint(low, high)))


@dataclass(frozen=True, slots=True)
class AttributeDecl:
    """One attribute: name, value sampler, and presence probability."""

    name: str
    value: Sampler
    presence: float = 1.0


@dataclass(frozen=True, slots=True)
class Particle:
    """``(option₁ | option₂ | …){min_count..max_count}`` content term.

    ``recursion_weight`` scales the selection probability of options that
    can recurse (as declared by the DTD's ``recursive_names``); the
    effective weight decays as ``recursion_weight ** depth`` so deep
    nesting becomes progressively rarer, the way IBM's generator keeps
    recursive DTDs finite.
    """

    options: tuple[str, ...]
    min_count: int = 1
    max_count: int | None = 1
    recursion_weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.options:
            raise ValueError("a particle needs at least one option")
        if self.max_count is not None and self.max_count < self.min_count:
            raise ValueError("max_count below min_count")


@dataclass(frozen=True, slots=True)
class ElementDecl:
    """One element type of the DTD."""

    name: str
    content: tuple[Particle, ...] = ()
    attributes: tuple[AttributeDecl, ...] = ()
    text: Sampler | None = None


@dataclass(frozen=True, slots=True)
class Dtd:
    """The element table and the document root."""

    root: str
    elements: dict[str, ElementDecl]

    def __post_init__(self) -> None:
        if self.root not in self.elements:
            raise ValueError(f"root element {self.root!r} is not declared")
        for decl in self.elements.values():
            for particle in decl.content:
                for option in particle.options:
                    if option not in self.elements:
                        raise ValueError(
                            f"<{decl.name}> references undeclared <{option}>"
                        )

    def declaration(self, name: str) -> ElementDecl:
        return self.elements[name]

    def recursive_names(self) -> frozenset[str]:
        """Element names that can (transitively) contain themselves."""
        reachable: dict[str, set[str]] = {
            name: {
                option
                for particle in decl.content
                for option in particle.options
            }
            for name, decl in self.elements.items()
        }
        # Transitive closure by iteration (element tables are tiny).
        changed = True
        while changed:
            changed = False
            for name, targets in reachable.items():
                extra = set()
                for target in targets:
                    extra |= reachable[target]
                if not extra <= targets:
                    targets |= extra
                    changed = True
        return frozenset(name for name, targets in reachable.items() if name in targets)


def make_dtd(root: str, declarations: Sequence[ElementDecl]) -> Dtd:
    """Build a :class:`Dtd` from a list of declarations."""
    return Dtd(root=root, elements={decl.name: decl for decl in declarations})
