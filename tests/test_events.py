"""Tests for the modified-SAX event model (repro.stream.events)."""

import pytest

from repro.errors import StreamStateError
from repro.stream.events import (
    Characters,
    EndElement,
    StartElement,
    count_elements,
    document_depth,
    validate_events,
)


def _doc():
    return [
        StartElement("a", 1, 1, {}),
        Characters("hi", 1),
        StartElement("b", 2, 2, {"x": "1"}),
        EndElement("b", 2),
        EndElement("a", 1),
    ]


class TestEventObjects:
    def test_start_element_fields(self):
        event = StartElement("book", 2, 7, {"id": "3"})
        assert event.tag == "book"
        assert event.level == 2
        assert event.node_id == 7
        assert event.attributes == {"id": "3"}

    def test_start_element_default_attributes_empty(self):
        assert StartElement("a", 1, 1).attributes == {}

    def test_events_are_frozen(self):
        with pytest.raises(AttributeError):
            StartElement("a", 1, 1).tag = "b"

    def test_str_forms(self):
        assert "book" in str(StartElement("book", 1, 1, {"k": "v"}))
        assert "</b>" in str(EndElement("b", 2))
        assert "chars" in str(Characters("t", 1))

    def test_characters_fields(self):
        event = Characters("text", 3)
        assert event.text == "text"
        assert event.level == 3


class TestValidateEvents:
    def test_valid_stream_passes_through(self):
        events = _doc()
        assert list(validate_events(events)) == events

    def test_mismatched_end_tag(self):
        events = [StartElement("a", 1, 1, {}), EndElement("b", 1)]
        with pytest.raises(StreamStateError, match="does not match"):
            list(validate_events(events))

    def test_wrong_start_level(self):
        events = [StartElement("a", 2, 1, {})]
        with pytest.raises(StreamStateError, match="level"):
            list(validate_events(events))

    def test_end_without_start(self):
        with pytest.raises(StreamStateError, match="without any open"):
            list(validate_events([EndElement("a", 1)]))

    def test_second_root_rejected(self):
        events = [
            StartElement("a", 1, 1, {}),
            EndElement("a", 1),
            StartElement("b", 1, 2, {}),
            EndElement("b", 1),
        ]
        with pytest.raises(StreamStateError, match="second document element"):
            list(validate_events(events))

    def test_non_increasing_ids_rejected(self):
        events = [
            StartElement("a", 1, 5, {}),
            StartElement("b", 2, 5, {}),
        ]
        with pytest.raises(StreamStateError, match="document order"):
            list(validate_events(events))

    def test_unclosed_document(self):
        with pytest.raises(StreamStateError, match="unclosed"):
            list(validate_events([StartElement("a", 1, 1, {})]))

    def test_empty_stream_rejected(self):
        with pytest.raises(StreamStateError, match="empty stream"):
            list(validate_events([]))

    def test_characters_outside_document(self):
        with pytest.raises(StreamStateError, match="outside"):
            list(validate_events([Characters("x", 1)]))

    def test_characters_wrong_level(self):
        events = [StartElement("a", 1, 1, {}), Characters("x", 5)]
        with pytest.raises(StreamStateError, match="level"):
            list(validate_events(events))


class TestStreamMeasures:
    def test_document_depth(self):
        assert document_depth(_doc()) == 2

    def test_count_elements(self):
        assert count_elements(_doc()) == 2

    def test_depth_of_flat_document(self):
        events = [StartElement("a", 1, 1, {}), EndElement("a", 1)]
        assert document_depth(events) == 1
