"""Round-trip fuzz: seeded random documents survive write → parse.

The satellite contract of the transform PR: for a corpus of seeded
random event streams, ``write_events`` → tokenizer reproduces the exact
event sequence — levels, node ids, attribute values (including the
whitespace characters the writer must escape to survive attribute-value
normalization) and text content.
"""

import random

import pytest

from repro.stream.events import Characters, EndElement, StartElement
from repro.stream.tokenizer import parse_string
from repro.stream.writer import events_to_string
from repro.transform.extract import SubstreamExtractor

TAGS = ["alpha", "beta", "gamma", "delta", "ns-like", "x1"]
TEXT_POOL = [
    "plain", "a & b", "less<than", "greater>than", "quote\"s", "tick's",
    "tab\tseparated", "line\nbreak", "  padded  ", "&amp;", "]]>",
]
ATTR_POOL = [
    "v", 'say "hi"', "a&b", "<angle>", "tab\there", "new\nline",
    "return\rhere", "mixed \t\n\r all",
]


def random_events(rng, max_depth=5, max_children=4):
    """One random well-formed document as a modified-SAX event list."""
    events = []
    counter = [0]

    def element(level):
        counter[0] += 1
        node_id = counter[0]
        tag = rng.choice(TAGS)
        attributes = {
            f"a{i}": rng.choice(ATTR_POOL)
            for i in range(rng.randint(0, 3))
        }
        events.append(StartElement(tag, level, node_id, attributes))
        last_was_text = False
        if level < max_depth:
            for _ in range(rng.randint(0, max_children)):
                if rng.random() < 0.4:
                    if not last_was_text:  # adjacent text nodes would merge
                        events.append(
                            Characters(rng.choice(TEXT_POOL), level)
                        )
                        last_was_text = True
                else:
                    element(level + 1)
                    last_was_text = False
        events.append(EndElement(tag, level))

    element(1)
    return events


@pytest.mark.parametrize("seed", range(25))
def test_seeded_round_trip_identity(seed):
    rng = random.Random(seed)
    events = random_events(rng)
    serialized = events_to_string(events)
    reparsed = list(parse_string(serialized, skip_whitespace=False))
    assert reparsed == events


@pytest.mark.parametrize("seed", range(25))
def test_serialization_is_stable(seed):
    """write → parse → write is a fixed point (canonical form)."""
    rng = random.Random(1000 + seed)
    once = events_to_string(random_events(rng))
    twice = events_to_string(list(parse_string(once, skip_whitespace=False)))
    assert twice == once


@pytest.mark.parametrize("seed", range(10))
def test_extracted_fragments_reparse(seed):
    """Every extracted fragment re-parses to a well-formed stream whose
    serialization is the fragment itself."""
    rng = random.Random(2000 + seed)
    document = events_to_string(random_events(rng))
    extractor = SubstreamExtractor("//alpha")
    extractor.feed_text(document)
    for fragment in extractor.close():
        events = list(parse_string(fragment.text, skip_whitespace=False))
        assert events[0].level == 1
        assert events_to_string(events) == fragment.text


def test_attribute_whitespace_survives():
    events = [
        StartElement("a", 1, 1, {"k": "x\ny\tz\rw"}),
        EndElement("a", 1),
    ]
    serialized = events_to_string(events)
    assert "&#10;" in serialized and "&#9;" in serialized \
        and "&#13;" in serialized
    assert list(parse_string(serialized, skip_whitespace=False)) == events
