"""Differential suite for emission timing: eager return + earliest mode.

Two generations of the same idea live here:

* **Eager return** (folded in from the former
  ``tests/test_eager_emission.py``): when no trunk ancestor of the
  return node carries predicates, a satisfied return entry is already a
  solution (Proposition 4.2), so default-mode TwigM emits at the return
  element's end tag instead of buffering until the root closes.
* **Earliest emission** (``emission="earliest"``, docs/LATENCY.md):
  the general form — candidates flush at the first event where the
  input read so far proves them, for *any* query, including predicates
  above the return node.

The earliest-mode contract under test is the ISSUE-10 acceptance bar:
identical result *sets* to the default mode (ordering may differ where
the paper's semantics leave it unspecified — a result provable early is
emitted before later-closing siblings), bit-for-bit agreement among
pull/push/compiled under earliest across 200 seeded documents,
mid-candidate checkpoint/resume, multiq live add/remove with mixed
modes, and exactly-once serving resume.
"""

import json
import random

import pytest

from repro.core.fragments import FragmentCapture
from repro.core.machine import build_machine
from repro.core.processor import XPathStream
from repro.core.results import CallbackSink, CollectingSink
from repro.core.twigm import TwigM
from repro.latency import DecisionLagProbe, LatencyClock
from repro.multiq import MultiQueryEngine
from repro.stream.tokenizer import parse_string
from repro.xpath.querytree import compile_query


def machine_for(query):
    return build_machine(compile_query(query))


# -- eager return: the predicate-free-trunk special case ---------------------


class TestEagerReturnDetection:
    @pytest.mark.parametrize(
        "query, eager",
        [
            ("//a//b", True),                 # no predicates anywhere
            ("//a/b[c]", True),               # predicates only on the return
            ("//a//b[c[d]][@x]", True),       # ...however complex
            ("//b[. = 'x']", True),           # root == return
            ("//a[d]//b", False),             # predicate above
            ("//a[@x]/b/c", False),           # attribute predicate above
            ("//a[. = '1']//b", False),       # value test above
            ("//a[x or y]/b", False),         # boolean condition above
            ("//a[d]//b[e]//c", False),       # the paper's Q1
        ],
    )
    def test_flag(self, query, eager):
        assert machine_for(query).eager_return is eager


class TestEagerReturnLatency:
    def test_emission_at_return_close_not_root_close(self):
        emitted = []
        machine = TwigM("//a/b[c]", sink=CallbackSink(emitted.append))
        events = list(parse_string("<a><b><c/></b><x><y/></x></a>"))
        machine.feed(events[:5])  # through </b>
        assert emitted == [2], "must not wait for </a>"

    def test_non_eager_waits_for_root(self):
        emitted = []
        machine = TwigM("//a[d]/b", sink=CallbackSink(emitted.append))
        events = list(parse_string("<a><b/><d/></a>"))
        machine.feed(events[:3])
        assert emitted == []
        machine.feed(events[3:])
        assert emitted == [2]

    def test_no_candidate_buffering_in_eager_mode(self):
        machine = TwigM("//a//b[c]")
        events = list(parse_string("<a><b><c/></b><b><c/></b><x/></a>"))
        machine.feed(events[:-1])  # keep <a> open
        (root_entry,) = machine.stack_of(machine.machine.root)
        assert root_entry.candidates is None
        assert sorted(machine.results) == [2, 4]


class TestEagerReturnCorrectness:
    CASES = [
        ("//a//b", "<a><b><b/></b></a>", [2, 3]),
        ("//a/b[c]", "<a><b><c/></b><b/></a>", [2]),
        ("//b[@x]", "<r><b x='1'/><b/></r>", [2]),
        ("//a//b[c][d]", "<a><b><c/><d/></b><b><c/></b></a>", [2]),
    ]

    @pytest.mark.parametrize("query, xml, expected", CASES)
    def test_results(self, query, xml, expected):
        assert sorted(TwigM(query).run(parse_string(xml))) == expected

    def test_fragments_flush_eagerly(self):
        capture = FragmentCapture("//a/b[c]")
        events = list(parse_string("<a><b><c/>t</b><later/></a>"))
        capture.feed(events[:6])  # through </b>
        assert [f for _i, f in capture.fragments] == ["<b><c/>t</b>"]
        assert capture.buffered_candidates == 0

    def test_nested_eager_matches_each_emit(self):
        machine = TwigM("//b")
        machine.feed(parse_string("<a><b><b/></b></a>"))
        assert sorted(machine.results) == [2, 3]


class TestEagerReturnOverride:
    def test_force_off_reverts_to_root_close(self):
        emitted = []
        machine = TwigM("//a/b[c]", sink=CallbackSink(emitted.append),
                        eager=False)
        events = list(parse_string("<a><b><c/></b></a>"))
        machine.feed(events[:5])
        assert emitted == []
        machine.feed(events[5:])
        assert emitted == [2]

    def test_results_identical_either_way(self):
        xml = "<a><b><c/></b><b/><b><c/></b></a>"
        eager = TwigM("//a/b[c]").run(parse_string(xml))
        lazy = TwigM("//a/b[c]", eager=False).run(parse_string(xml))
        assert sorted(eager) == sorted(lazy)

    def test_forcing_on_when_unsound_is_rejected(self):
        from repro.errors import UnsupportedQueryError

        with pytest.raises(UnsupportedQueryError, match="unsound"):
            TwigM("//a[d]/b", eager=True)


# -- seeded corpus (same generator shape as the compile suite) ---------------

TAGS = ("a", "b", "c", "d", "e")


def _element(rng: random.Random, depth: int) -> str:
    tag = rng.choice(TAGS)
    attrs = ""
    if rng.random() < 0.25:
        attrs = f" k='{rng.randint(0, 3)}'"
    if rng.random() < 0.12:
        return f"<{tag}{attrs}/>"
    parts = [f"<{tag}{attrs}>"]
    if rng.random() < 0.35:
        parts.append(rng.choice(["1", "2", "x", "text run"]))
    if depth < 4:
        for _ in range(rng.randint(0, 3)):
            parts.append(_element(rng, depth + 1))
    parts.append(f"</{tag}>")
    return "".join(parts)


def make_document(seed: int) -> str:
    rng = random.Random(seed)
    body = "".join(_element(rng, 1) for _ in range(rng.randint(1, 4)))
    return f"<r>{body}</r>"


#: Queries with predicates *above* the return node — the class where
#: earliest mode actually changes emission timing — plus return-node
#: predicates and value/boolean conditions for breadth.
QUERIES = (
    "//a[b]//c",
    "//a[b]/c",
    "//a[@k]//b",
    "//a[b][d]//c",
    "//a[b or d]//c",
    "//a[not(b)]//c",
    "//a[@k = '1']//b",
    "//a[b = '1']//c",
    "//a[b]//c[d]",
    "/r/a[b]/c",
)

SEEDS = range(200)


def _queries(seed: int):
    rng = random.Random(20_000 + seed)
    return {rng.choice(QUERIES) for _ in range(3)}


# -- earliest == default, and pull == push == compiled under earliest --------


@pytest.mark.parametrize("seed", SEEDS)
def test_earliest_matches_default_across_pipelines(seed):
    doc = make_document(seed)
    for query in _queries(seed):
        reference = XPathStream(query).evaluate(doc)
        earliest_pull = XPathStream(query, emission="earliest").evaluate(doc)
        # Result-set equality with the default mode; ordering free.
        assert sorted(earliest_pull) == sorted(reference)
        # Bit-for-bit agreement among the earliest-mode pipelines.
        assert (
            XPathStream(query, emission="earliest").evaluate_push(doc)
            == earliest_pull
        )
        assert (
            XPathStream(query, emission="earliest", compiled=True)
            .evaluate_push(doc)
            == earliest_pull
        )


def test_earliest_never_emits_what_default_does_not():
    """Stronger than set equality on one seed: scanned over many."""
    for seed in range(0, 200, 7):
        doc = make_document(seed)
        for query in QUERIES:
            default = set(XPathStream(query).evaluate(doc))
            earliest = set(
                XPathStream(query, emission="earliest").evaluate(doc)
            )
            assert earliest == default


def test_emission_parameter_is_validated():
    with pytest.raises(ValueError, match="emission"):
        XPathStream("//a[b]//c", emission="soonish")
    with pytest.raises(ValueError, match="emission"):
        TwigM("//a[b]//c", emission="late")


# -- earliest really is earlier ----------------------------------------------


class TestDecisionLag:
    XML = "<r><a><b/><c>hit</c><d/></a><a><c>miss</c></a></r>"

    def test_default_mode_has_positive_lag(self):
        clock = LatencyClock()
        probe = DecisionLagProbe(clock)
        machine = TwigM("//a[b]//c", sink=probe.wrap_sink(CollectingSink()),
                        lag_probe=probe)
        machine_feed_with_clock(machine, clock, self.XML)
        assert probe.event_lags() and all(l > 0 for l in probe.event_lags())

    def test_earliest_mode_collapses_lag_to_zero(self):
        clock = LatencyClock()
        probe = DecisionLagProbe(clock)
        machine = TwigM("//a[b]//c", sink=probe.wrap_sink(CollectingSink()),
                        emission="earliest", lag_probe=probe)
        machine_feed_with_clock(machine, clock, self.XML)
        assert probe.event_lags() == [0]
        assert probe.byte_lags() == [0]

    def test_unmarked_emission_measures_zero(self):
        clock = LatencyClock()
        probe = DecisionLagProbe(clock)
        clock.advance(5, 50)
        probe.observe(3)
        assert probe.lags == [(3, 0, 0)]

    def test_mark_is_idempotent_and_first_wins(self):
        clock = LatencyClock()
        probe = DecisionLagProbe(clock)
        probe.mark_provable([7])
        clock.advance(4, 40)
        probe.mark_provable([7])  # later mark must not move the point
        clock.advance(1, 10)
        probe.observe(7)
        probe.observe(7)  # duplicate emission is not re-measured
        assert probe.lags == [(7, 5, 50)]


def machine_feed_with_clock(machine, clock, xml):
    for event in parse_string(xml):
        clock.advance(1, 10)
        cls = type(event).__name__
        if cls == "StartElement":
            machine.start_element(event.tag, event.level, event.node_id,
                                  event.attributes)
        elif cls == "EndElement":
            machine.end_element(event.tag, event.level)
        else:
            machine.characters(event.text, event.level)


# -- mid-candidate checkpoint/resume -----------------------------------------


@pytest.mark.parametrize("seed", range(0, 200, 5))
def test_earliest_snapshot_restore_mid_candidate(seed):
    doc = make_document(seed)
    for query in _queries(seed):
        uninterrupted = XPathStream(query, emission="earliest").evaluate(doc)
        cut = len(doc) // 2
        stream = XPathStream(query, emission="earliest")
        stream.feed_text_push(doc[:cut])
        snap = json.loads(json.dumps(stream.snapshot()))
        assert snap["emission"] == "earliest"
        resumed = XPathStream.restore(snap)
        resumed.feed_text_push(doc[cut:])
        assert resumed.close() == uninterrupted


def test_snapshot_without_emission_key_restores_default():
    """Pre-earliest captures (no "emission" key) restore unchanged."""
    doc = "<r><a><b/><c>1</c></a></r>"
    stream = XPathStream("//a[b]//c")
    stream.feed_text_push(doc[: len(doc) // 2])
    snap = stream.snapshot()
    del snap["emission"]
    resumed = XPathStream.restore(snap)
    assert resumed._emission == "default"
    resumed.feed_text_push(doc[len(doc) // 2:])
    assert resumed.close() == XPathStream("//a[b]//c").evaluate(doc)


def test_default_capture_restores_into_earliest_machine():
    """A machine-level default capture replayed into an earliest machine
    re-derives stability (the cascade re-runs on restore) and still
    produces the right results."""
    xml = "<r><a><b/><c>1</c><d/></a></r>"
    events = list(parse_string(xml))
    donor = TwigM("//a[b]//c")
    donor.feed(events[:5])  # mid-candidate
    state = json.loads(json.dumps(donor.snapshot_state()))

    heir = TwigM("//a[b]//c", emission="earliest")
    heir.restore_state(state)
    heir.feed(events[5:])
    assert sorted(heir.results) == sorted(TwigM("//a[b]//c").run(events))


# -- multiq: mixed emission modes, live add/remove ---------------------------


def test_multiq_mixed_modes_never_share_a_unit():
    engine = MultiQueryEngine()
    engine.add_query("d", "//a[b]//c")
    engine.add_query("e", "//a[b]//c", emission="earliest")
    engine.add_query("e2", "//a[b]//c", emission="earliest")
    assert engine.unit_count() == 2  # d alone; e and e2 share


@pytest.mark.parametrize("seed", range(0, 60, 4))
def test_multiq_live_add_remove_mixed_modes(seed):
    doc = make_document(seed)
    chunks = [doc[i:i + 41] for i in range(0, len(doc), 41)]
    third = max(1, len(chunks) // 3)

    def run(emission):
        engine = MultiQueryEngine()
        engine.add_query("base", "//a[b]//c", emission=emission)
        for index, chunk in enumerate(chunks):
            if index == third:
                engine.add_query("late", "//a[@k]//b", emission=emission)
            if index == 2 * third:
                engine.remove_query("base")
            engine.feed_text_push(chunk)
        return engine.close()

    default, earliest = run("default"), run("earliest")
    assert set(default) == set(earliest)
    for name in default:
        assert sorted(default[name]) == sorted(earliest[name])


@pytest.mark.parametrize("seed", range(0, 60, 6))
def test_multiq_mixed_mode_snapshot_restore(seed):
    doc = make_document(seed)
    engine = MultiQueryEngine()
    engine.add_query("d", "//a[b]//c")
    engine.add_query("e", "//a[b]//c", emission="earliest")
    reference = {
        name: sorted(ids)
        for name, ids in MultiQueryEngine(
            {"d": "//a[b]//c", "e": "//a[b]//c"}
        ).evaluate(doc).items()
    }
    cut = len(doc) // 2
    engine.feed_text_push(doc[:cut])
    snap = json.loads(json.dumps(engine.snapshot()))
    resumed = MultiQueryEngine.restore(snap)
    assert resumed.registration("e").emission == "earliest"
    assert resumed.registration("d").emission == "default"
    resumed.feed_text_push(doc[cut:])
    results = resumed.close()
    assert {name: sorted(ids) for name, ids in results.items()} == reference


# -- serving: earliest results ride exactly-once resume ----------------------


@pytest.mark.parametrize("seed", (3, 11, 42))
@pytest.mark.parametrize("queries", (
    {"q": "//a[b]//c"},
    {"q1": "//a[b]//c", "q2": "//a[@k]//b"},
))
def test_serve_session_resume_is_exactly_once_under_earliest(seed, queries):
    from repro.serve.session import ServeConfig, Session

    doc = make_document(seed)
    chunks = [doc[i:i + 23] for i in range(0, len(doc), 23)]

    def run(emission, resume_at=None):
        delivered = []

        def on_result(name, node_id, seq, fragment=None):
            delivered.append((name, node_id, seq))

        config = ServeConfig(emission=emission)
        session = Session.open({"queries": queries}, config, on_result)
        offset = 0
        for index, chunk in enumerate(chunks):
            session.feed(offset, chunk)
            offset += len(chunk)
            if resume_at == index:
                blob = json.loads(json.dumps(session.checkpoint()))
                last = delivered[-1][2] if delivered else 0
                session = Session.resume(blob, config, on_result,
                                         last_result_seq=last)
        session.finish()
        return delivered

    reference = run("default")
    for resume_at in (None, 1, len(chunks) // 2):
        delivered = run("earliest", resume_at=resume_at)
        # Exactly once: no duplicate sequence numbers or results.
        assert len(delivered) == len(set(delivered))
        assert len({seq for _, _, seq in delivered}) == len(delivered)
        # Same result set as an uninterrupted default-mode session.
        assert sorted((n, i) for n, i, _ in delivered) == sorted(
            (n, i) for n, i, _ in reference
        )


# -- transform: fragments are never truncated by early verdicts --------------


@pytest.mark.parametrize("seed", range(0, 60, 5))
def test_extractor_fragments_identical_under_earliest(seed):
    from repro.transform.extract import select

    doc = make_document(seed)
    for query in ("//a[b]//c", "//a[b]", "//a[@k]//b"):
        default = select(doc, query)
        earliest = select(doc, query, emission="earliest")
        assert sorted((f.node_id, f.text) for f in default) == sorted(
            (f.node_id, f.text) for f in earliest
        )


def test_extractor_mid_fragment_snapshot_under_earliest():
    from repro.transform.extract import SubstreamExtractor, select

    xml = "<r><a><b/><c><d>deep</d>tail</c></a></r>"
    reference = select(xml, "//a[b]//c")
    cut = xml.index("tail")  # mid-candidate, verdict already early
    extractor = SubstreamExtractor("//a[b]//c", emission="earliest")
    extractor.feed_text(xml[:cut])
    snap = json.loads(json.dumps(extractor.snapshot()))
    resumed = SubstreamExtractor.restore(snap)
    assert resumed._emission == "earliest"
    resumed.feed_text(xml[cut:])
    fragments = resumed.close()
    assert [(f.node_id, f.text) for f in fragments] == [
        (f.node_id, f.text) for f in reference
    ]
