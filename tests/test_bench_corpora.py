"""Tests for benchmark corpus management (repro.bench.corpora)."""

import os

import pytest

from repro.bench import corpora


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path / "cache"))


class TestCacheDirectory:
    def test_env_override(self, tmp_path):
        path = corpora.cache_dir()
        assert str(path).startswith(str(tmp_path))
        assert path.is_dir()

    def test_materialise_is_idempotent(self):
        first = corpora.get_corpus("book", "tiny")
        stamp = first.path.stat().st_mtime_ns
        second = corpora.get_corpus("book", "tiny")
        assert second.path == first.path
        assert second.path.stat().st_mtime_ns == stamp

    def test_no_tmp_leftovers(self):
        corpus = corpora.get_corpus("protein", "tiny")
        siblings = list(corpus.path.parent.iterdir())
        assert not [p for p in siblings if p.suffix == ".tmp"]


class TestCorpusObjects:
    def test_events_are_replayable(self):
        corpus = corpora.get_corpus("benchmark", "tiny")
        first = sum(1 for _ in corpus.events())
        second = sum(1 for _ in corpus.events())
        assert first == second > 0

    def test_size_bytes_matches_file(self):
        corpus = corpora.get_corpus("book", "tiny")
        assert corpus.size_bytes() == corpus.path.stat().st_size

    def test_all_dataset_keys(self):
        assert set(corpora.CORPORA) == {"book", "benchmark", "protein"}
        for key in corpora.CORPORA:
            assert corpora.get_corpus(key, "tiny").size_bytes() > 0

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            corpora.get_corpus("nope", "tiny")

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError):
            corpora.get_corpus("book", "galactic")


class TestScaledCorpora:
    def test_factor_names_are_distinct_files(self):
        one = corpora.scaled_book_corpus(1, "tiny")
        two = corpora.scaled_book_corpus(2, "tiny")
        assert one.path != two.path
        assert two.size_bytes() > 1.8 * one.size_bytes()

    def test_scaled_content_parses(self):
        from repro.stream.events import validate_events

        corpus = corpora.scaled_book_corpus(2, "tiny")
        count = sum(1 for _ in validate_events(corpus.events()))
        assert count > 0


class TestProfiles:
    def test_profiles_monotonic_book_sizes(self):
        books = [corpora.PROFILES[p][0] for p in ("tiny", "small", "medium", "large")]
        assert books == sorted(books)

    def test_default_profile_is_valid(self):
        assert corpora.DEFAULT_PROFILE in corpora.PROFILES or True
        # (the env var may point anywhere; the constant must exist)
        assert "small" in corpora.PROFILES
