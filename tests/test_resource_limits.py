"""Resource limits: hostile documents must fail fast in O(limit) memory."""

from __future__ import annotations

import pytest

from repro import XPathStream
from repro.errors import ResourceLimitError
from repro.stream.expat_source import ExpatSource
from repro.stream.recovery import RecoveryPolicy, ResourceLimits
from repro.stream.tokenizer import XmlTokenizer, parse_string


class TestLimitsConfig:
    def test_defaults_are_unlimited(self):
        limits = ResourceLimits()
        limits.check("max_depth", 10**9)  # no limit -> no raise

    def test_hardened_profile(self):
        limits = ResourceLimits.hardened()
        assert limits.max_depth == 512
        assert limits.max_attributes == 256

    def test_check_raises_with_context(self):
        limits = ResourceLimits(max_depth=4)
        with pytest.raises(ResourceLimitError) as info:
            limits.check("max_depth", 5)
        assert info.value.limit == "max_depth"
        assert info.value.configured == 4
        assert info.value.observed == 5

    def test_dict_round_trip(self):
        limits = ResourceLimits(max_depth=3, max_text_length=100)
        assert ResourceLimits.from_dict(limits.to_dict()) == limits
        assert ResourceLimits.from_dict(None) is None


class TestErrorReporting:
    """The error must say which limit tripped, the bound, and the value."""

    def test_message_names_limit_bound_and_observation(self):
        error = ResourceLimitError("max_depth", 4, 5)
        message = str(error)
        assert "max_depth" in message
        assert "4" in message and "5" in message
        assert "exceeded" in message
        # Human description of what the limit bounds rides along.
        assert "nesting depth" in message

    def test_message_carries_context_when_given(self):
        error = ResourceLimitError(
            "max_text_length", 100, 250, context="serving session abc123"
        )
        assert "while serving session abc123" in str(error)
        assert error.context == "serving session abc123"

    def test_unknown_limit_name_still_formats(self):
        error = ResourceLimitError("max_future_thing", 1, 2)
        message = str(error)
        assert "max_future_thing=1" in message
        assert "observed 2" in message

    def test_to_dict_is_json_ready(self):
        import json

        error = ResourceLimitError("max_buffered_candidates", 256, 300,
                                   context="query 'books'")
        payload = json.loads(json.dumps(error.to_dict()))
        assert payload["limit"] == "max_buffered_candidates"
        assert payload["configured"] == 256
        assert payload["observed"] == 300
        assert payload["context"] == "query 'books'"
        assert "candidate" in payload["description"]

    def test_check_threads_context_through(self):
        limits = ResourceLimits(max_depth=2)
        with pytest.raises(ResourceLimitError) as info:
            limits.check("max_depth", 9, context="tenant 'acme'")
        assert info.value.context == "tenant 'acme'"
        assert "while tenant 'acme'" in str(info.value)


class TestDepthBomb:
    def test_million_deep_document_rejected_lazily(self):
        """A depth-10⁶ nesting bomb must die after ~limit elements, having
        consumed O(limit) of the input — not after parsing the whole thing."""
        consumed = 0

        def bomb():
            nonlocal consumed
            for _ in range(10**6):
                consumed += 1
                yield "<d>"

        tokenizer = XmlTokenizer(limits=ResourceLimits(max_depth=100))
        with pytest.raises(ResourceLimitError) as info:
            for chunk in bomb():
                for _ in tokenizer.feed(chunk):
                    pass
        assert info.value.limit == "max_depth"
        assert consumed <= 102  # O(limit), not O(input)

    def test_depth_within_limit_passes(self):
        xml = "<d>" * 50 + "</d>" * 50
        events = list(parse_string(xml, limits=ResourceLimits(max_depth=50)))
        assert len(events) == 100


class TestAttributeBomb:
    def test_hundred_thousand_attributes_rejected(self):
        """One element with 10⁵ attributes: max_buffered_input kills the
        giant incomplete tag long before the full input is buffered."""
        consumed = 0

        def bomb():
            nonlocal consumed
            yield "<e "
            for i in range(10**5):
                consumed += 1
                yield f"a{i}='v' "

        tokenizer = XmlTokenizer(limits=ResourceLimits(max_buffered_input=4096))
        with pytest.raises(ResourceLimitError) as info:
            for chunk in bomb():
                for _ in tokenizer.feed(chunk):
                    pass
        assert info.value.limit == "max_buffered_input"
        assert consumed < 1000  # peak buffer O(limit), not O(input)

    def test_max_attributes_on_complete_tag(self):
        tag = "<e " + " ".join(f"a{i}='v'" for i in range(20)) + "/>"
        with pytest.raises(ResourceLimitError) as info:
            list(parse_string(tag, limits=ResourceLimits(max_attributes=10)))
        assert info.value.limit == "max_attributes"

    def test_max_attribute_length(self):
        xml = f"<e a='{'x' * 100}'/>"
        with pytest.raises(ResourceLimitError):
            list(parse_string(xml, limits=ResourceLimits(max_attribute_length=50)))


class TestTextAndEventLimits:
    def test_max_text_length(self):
        xml = f"<a>{'y' * 1000}</a>"
        with pytest.raises(ResourceLimitError) as info:
            list(parse_string(xml, limits=ResourceLimits(max_text_length=100)))
        assert info.value.limit == "max_text_length"

    def test_max_total_events(self):
        xml = "<r>" + "<a/>" * 100 + "</r>"
        with pytest.raises(ResourceLimitError):
            list(parse_string(xml, limits=ResourceLimits(max_total_events=50)))

    def test_limits_not_downgraded_by_repair(self):
        """Recovery policies absorb syntax errors, never limit errors."""
        xml = "<d>" * 100
        with pytest.raises(ResourceLimitError):
            list(
                parse_string(
                    xml,
                    policy=RecoveryPolicy.REPAIR,
                    limits=ResourceLimits(max_depth=10),
                )
            )


class TestMachineCandidateLimits:
    def test_twigm_candidate_buffer_capped(self):
        """//a[z]//b over many b's and no z buffers every b as a candidate;
        the cap must trip before the buffer grows unbounded."""
        xml = "<a>" + "<b/>" * 200 + "</a>"
        stream = XPathStream(
            "//a[z]//b", limits=ResourceLimits(max_buffered_candidates=50)
        )
        with pytest.raises(ResourceLimitError) as info:
            stream.evaluate(xml)
        assert info.value.limit == "max_buffered_candidates"

    def test_twigm_confirmed_results_not_capped(self):
        """Emitted (confirmed) matches leave the buffer: the same cap that
        kills the hostile query admits the friendly one."""
        xml = "<a><z/>" + "<b/>" * 200 + "</a>"
        stream = XPathStream(
            "//a[z]//b", limits=ResourceLimits(max_buffered_candidates=300)
        )
        assert len(stream.evaluate(xml)) == 200

    def test_branchm_candidate_cap(self):
        xml = "<a>" + "<b><c/></b>" * 100 + "</a>"
        stream = XPathStream(
            "/a[z]/b/c",
            engine="branchm",
            limits=ResourceLimits(max_buffered_candidates=20),
        )
        with pytest.raises(ResourceLimitError):
            stream.evaluate(xml)

    def test_machine_depth_limit(self):
        xml = "<d>" * 30 + "</d>" * 30
        stream = XPathStream("//d", limits=ResourceLimits(max_depth=10))
        with pytest.raises(ResourceLimitError):
            stream.evaluate(xml)


class TestExpatLimits:
    def test_expat_depth_limit(self):
        source = ExpatSource(limits=ResourceLimits(max_depth=5))
        with pytest.raises(ResourceLimitError):
            for _ in source.feed("<d>" * 10):
                pass

    def test_expat_attribute_limit(self):
        tag = "<e " + " ".join(f"a{i}='v'" for i in range(20)) + "/>"
        source = ExpatSource(limits=ResourceLimits(max_attributes=10))
        with pytest.raises(ResourceLimitError):
            for _ in source.feed(tag):
                pass

    def test_expat_text_limit(self):
        source = ExpatSource(limits=ResourceLimits(max_text_length=10))
        with pytest.raises(ResourceLimitError):
            for _ in source.feed(f"<a>{'x' * 100}</a>"):
                pass

    def test_expat_event_limit(self):
        source = ExpatSource(limits=ResourceLimits(max_total_events=10))
        with pytest.raises(ResourceLimitError):
            for _ in source.feed("<r>" + "<a/>" * 50 + "</r>"):
                pass
