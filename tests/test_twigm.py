"""Tests for TwigM (repro.core.twigm, §3.3 and §4)."""

import pytest

from repro.core.results import CallbackSink
from repro.core.twigm import TwigM, evaluate_twigm
from repro.stream.tokenizer import parse_string
from tests.conftest import chain_c1_id, chain_xml


def run(query, xml):
    return evaluate_twigm(query, parse_string(xml))


class TestPaperRunningExample:
    def test_q1_on_figure_1(self, figure1_xml, figure1_c1):
        """//a[d]//b[e]//c finds exactly c₁ (match (a₁,b₁,c₁))."""
        assert run("//a[d]//b[e]//c", figure1_xml) == [figure1_c1]

    def test_q1_without_satisfying_predicates(self):
        xml = chain_xml(4, with_predicates=False)
        assert run("//a[d]//b[e]//c", xml) == []

    def test_intro_query_child_axis_variant(self, figure1_xml):
        """//a/b[e]//c: only (aₙ, b₁) are parent-child; e is under b₁."""
        assert run("//a/b[e]//c", figure1_xml) == [chain_c1_id(4)]
        # ...but aₙ has no d child, so adding [d] to the parent empties it.
        assert run("//a[d]/b[e]//c", figure1_xml) == []

    def test_compact_encoding_bound(self):
        """During the run, stacks hold ≤ 2n+1 entries, never n²."""
        n = 30
        machine = TwigM("//a[d]//b[e]//c")
        peak = 0
        for event in parse_string(chain_xml(n)):
            machine.feed([event])
            peak = max(peak, machine.total_stack_entries())
        assert peak <= 2 * n + 3  # 2n chain entries + c + slack
        assert machine.results == [chain_c1_id(n)]


class TestPredicateSemantics:
    def test_existential_predicate(self):
        xml = "<r><a><d/><k/></a><a><k/></a></r>"
        assert run("//a[d]/k", xml) == [4]

    def test_predicate_after_candidate(self):
        xml = "<a><b><c/></b><d/></a>"
        assert run("//a[d]//c", xml) == [3]

    def test_nested_predicates(self):
        xml = "<r><a><b><c/></b><t/></a><a><b/><t/></a></r>"
        assert run("//a[b[c]]/t", xml) == [5]

    def test_predicate_path_with_descendant(self):
        xml = "<r><a><x><e/></x><t/></a><a><t/></a></r>"
        assert run("//a[.//e]/t", xml) == [5]

    def test_multiple_predicates(self):
        xml = "<r><a><d/><e/><t/></a><a><d/><t/></a></r>"
        assert run("//a[d][e]/t", xml) == [5]

    def test_wildcard_trunk_with_predicate(self):
        xml = "<r><q><d/><t/></q><w><t/></w></r>"
        assert run("//*[d]/t", xml) == [4]

    def test_predicate_on_return_node(self):
        xml = "<r><b><e/></b><b/></r>"
        assert run("//b[e]", xml) == [2]

    def test_attribute_predicates(self):
        xml = "<r><a id='7'><t/></a><a id='8'><t/></a><a><t/></a></r>"
        assert run("//a[@id]/t", xml) == [3, 5]
        assert run("//a[@id = '7']/t", xml) == [3]

    def test_value_tests(self):
        xml = "<r><b><p>25</p><t/></b><b><p>40</p><t/></b></r>"
        assert run("//b[p < 30]/t", xml) == [4]

    def test_value_test_uses_string_value(self):
        xml = "<r><b><p>2<i>5</i></p><t/></b></r>"
        assert run("//b[p = 25]/t", xml) == [5]

    def test_self_value_test_on_return(self):
        xml = "<r><b>x</b><b>y</b></r>"
        assert run("//b[. = 'y']", xml) == [3]


class TestRecursionAndDuplicates:
    def test_solution_through_multiple_matches_reported_once(self):
        """//a//c on a/a/c: two matches, one output."""
        xml = "<a><a><c/></a></a>"
        assert run("//a//c", xml) == [3]

    def test_nested_roots_each_emit(self):
        xml = "<a><c/><a><c/></a></a>"
        assert sorted(run("//a//c", xml)) == [2, 4]

    def test_deep_recursion_with_predicates(self):
        xml = "<a><d/><a><a><d/><c/></a></a></a>"
        assert run("//a[d]//c", xml) == [6]

    def test_predicate_satisfied_only_at_outer_level(self):
        xml = "<a><d/><a><c/></a></a>"
        assert run("//a[d]/a/c", xml) == [4]
        assert run("//a[d]/c", xml) == []

    def test_same_tag_trunk_steps(self):
        xml = "<a><a><b/></a></a>"
        assert run("//a//a/b", xml) == [3]

    def test_candidate_uploaded_through_all_qualifying_ancestors(self):
        # Both outer and inner 'a' can anchor; dedup keeps one emission.
        xml = "<a><d/><a><d/><b><e/><c/></b></a></a>"
        assert run("//a[d]//b[e]//c", xml) == [7]


class TestOutputTiming:
    def test_output_at_root_close(self):
        """With predicates, output waits for the root match to close."""
        emitted = []
        machine = TwigM("//a[d]//c", sink=CallbackSink(emitted.append))
        events = list(parse_string("<a><c/><d/></a>"))
        machine.feed(events[:-1])
        assert emitted == []  # root still open
        machine.feed(events[-1:])
        assert emitted == [2]

    def test_inner_root_emits_before_document_end(self):
        emitted = []
        machine = TwigM("//a[d]//c", sink=CallbackSink(emitted.append))
        xml = "<r><a><d/><c/></a><x><y/></x></r>"
        events = list(parse_string(xml))
        machine.feed(events[:7])  # through </a>
        assert emitted == [4]


class TestEdgeCases:
    def test_no_match_tag_absent(self):
        assert run("//zzz[d]//c", "<a><d/><c/></a>") == []

    def test_root_query_with_predicate(self):
        assert run("/a[b]", "<a><b/></a>") == [1]
        assert run("/a[b]", "<a><c/></a>") == []

    def test_document_element_level_requirement(self):
        assert run("/b[c]", "<a><b><c/></b></a>") == []

    def test_empty_document_single_element(self):
        assert run("//a", "<a/>") == [1]

    def test_results_property_requires_default_sink(self):
        machine = TwigM("//a", sink=CallbackSink(lambda i: None))
        with pytest.raises(AttributeError):
            machine.results

    def test_reset(self):
        machine = TwigM("//a[b]")
        machine.feed(parse_string("<a><b/></a>"))
        machine.reset()
        assert machine.total_stack_entries() == 0

    def test_stacks_empty_after_complete_document(self):
        machine = TwigM("//a[d]//b[e]//c")
        machine.feed(parse_string(chain_xml(5)))
        assert machine.total_stack_entries() == 0

    def test_accepts_prebuilt_machine(self):
        from repro.core.machine import build_machine
        from repro.xpath.querytree import compile_query

        machine = build_machine(compile_query("//a"))
        assert TwigM(machine).run(parse_string("<a/>")) == [1]
