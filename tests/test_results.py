"""Tests for result sinks (repro.core.results)."""

import pytest

from repro.core.results import CallbackSink, CollectingSink, CountingSink, ResultSink


class TestCollectingSink:
    def test_collects_in_order(self):
        sink = CollectingSink()
        sink.emit(3)
        sink.emit(1)
        sink.emit(2)
        assert sink.results == [3, 1, 2]

    def test_deduplicates(self):
        sink = CollectingSink()
        for node_id in (1, 2, 1, 3, 2):
            sink.emit(node_id)
        assert sink.results == [1, 2, 3]

    def test_emit_all(self):
        sink = CollectingSink()
        sink.emit_all([5, 6, 5])
        assert sink.results == [5, 6]

    def test_len_and_iter(self):
        sink = CollectingSink()
        sink.emit_all([1, 2])
        assert len(sink) == 2
        assert list(sink) == [1, 2]


class TestCallbackSink:
    def test_forwards_each_new_id(self):
        seen = []
        sink = CallbackSink(seen.append)
        sink.emit(1)
        sink.emit(1)
        sink.emit(2)
        assert seen == [1, 2]


class TestCountingSink:
    def test_counts_distinct(self):
        sink = CountingSink()
        sink.emit_all([1, 1, 2, 3, 3, 3])
        assert sink.count == 3


class TestProtocol:
    def test_base_emit_is_abstract(self):
        with pytest.raises(NotImplementedError):
            ResultSink().emit(1)
