"""The binary event codec: exact round-trips, hostile-record bounds."""

from __future__ import annotations

import pytest

from repro.stream.codec import (
    CodecError,
    EVENT_KIND_CHARS,
    EVENT_KIND_END,
    EVENT_KIND_START,
    decode_event,
    encode_event,
    event_kind,
)
from repro.stream.events import Characters, EndElement, StartElement
from repro.stream.recovery import ResourceLimits
from repro.stream.tokenizer import parse_string

from tests.test_push_equivalence import random_document


class TestRoundTrip:
    def test_start_element(self):
        event = StartElement("book", 2, 7, {"year": "2006", "lang": "en"})
        decoded = decode_event(encode_event(event))
        assert decoded == event
        assert decoded.attributes == {"year": "2006", "lang": "en"}

    def test_characters_and_end(self):
        for event in (Characters("42 & <more>", 3), EndElement("book", 2)):
            assert decode_event(encode_event(event)) == event

    def test_unicode(self):
        event = Characters("prix € 中文 \U0001f600", 1)
        assert decode_event(encode_event(event)) == event

    def test_kind_bytes(self):
        assert event_kind(encode_event(StartElement("a", 1, 1, {}))) == EVENT_KIND_START
        assert event_kind(encode_event(Characters("x", 1))) == EVENT_KIND_CHARS
        assert event_kind(encode_event(EndElement("a", 1))) == EVENT_KIND_END

    @pytest.mark.parametrize("seed", range(25))
    def test_whole_documents_round_trip(self, seed):
        events = list(parse_string(random_document(seed)))
        assert [decode_event(encode_event(e)) for e in events] == events

    def test_large_varint_values(self):
        event = StartElement("t", 2**40, 2**50, {})
        assert decode_event(encode_event(event)) == event


class TestMalformed:
    def test_empty(self):
        with pytest.raises(CodecError):
            decode_event(b"")

    def test_unknown_kind(self):
        with pytest.raises(CodecError, match="unknown"):
            decode_event(bytes([99, 0]))

    def test_truncated_varint(self):
        with pytest.raises(CodecError, match="truncated"):
            decode_event(bytes([EVENT_KIND_CHARS, 0x80]))

    def test_truncated_string(self):
        data = encode_event(Characters("hello world", 1))
        with pytest.raises(CodecError, match="truncated"):
            decode_event(data[:-4])

    def test_trailing_garbage(self):
        data = encode_event(EndElement("a", 1)) + b"\x00"
        with pytest.raises(CodecError, match="trailing"):
            decode_event(data)

    def test_invalid_utf8(self):
        # kind | level | len=2 | 0xff 0xfe (not UTF-8)
        data = bytes([EVENT_KIND_CHARS, 1, 2, 0xFF, 0xFE])
        with pytest.raises(CodecError, match="UTF-8"):
            decode_event(data)

    def test_oversized_varint(self):
        with pytest.raises(CodecError, match="64 bits"):
            decode_event(bytes([EVENT_KIND_CHARS]) + b"\xff" * 10 + b"\x01")

    def test_negative_rejected_at_encode(self):
        with pytest.raises(CodecError):
            encode_event(Characters("x", -1))


class TestLimits:
    """CRC-valid but hostile records must hit the same walls as raw XML."""

    def test_depth(self):
        bomb = encode_event(StartElement("a", 5000, 1, {}))
        decode_event(bomb)  # unlimited: fine
        with pytest.raises(Exception, match="max_depth"):
            decode_event(bomb, ResourceLimits(max_depth=100))

    def test_attribute_count_checked_before_materialising(self):
        # Declare 2**30 attributes but carry none: the check must fire on
        # the declared count, not after building a giant dict.
        data = bytes([EVENT_KIND_START, 1, 1, 1, ord("a")]) + b"\x80\x80\x80\x80\x04"
        with pytest.raises(Exception, match="max_attributes"):
            decode_event(data, ResourceLimits(max_attributes=4))

    def test_attribute_length(self):
        event = StartElement("a", 1, 1, {"v": "x" * 1000})
        with pytest.raises(Exception, match="max_attribute_length"):
            decode_event(encode_event(event), ResourceLimits(max_attribute_length=10))

    def test_text_length_checked_on_declared_size(self):
        # A record declaring a 1 GiB string (without the bytes) must fail
        # on the declaration, not on allocation.
        data = bytes([EVENT_KIND_CHARS, 1]) + b"\x80\x80\x80\x80\x04"
        with pytest.raises(Exception, match="max_text_length"):
            decode_event(data, ResourceLimits(max_text_length=1 << 20))

    def test_within_limits_passes(self):
        limits = ResourceLimits(
            max_depth=10, max_attributes=4, max_attribute_length=16,
            max_text_length=64,
        )
        for event in (
            StartElement("a", 3, 1, {"k": "v"}),
            Characters("short", 3),
            EndElement("a", 3),
        ):
            assert decode_event(encode_event(event), limits) == event
