"""The framed segment log: rotation, recovery, manifest, compaction, sync."""

from __future__ import annotations

import json
import os

import pytest

from repro.serve.framing import encode_frame
from repro.store.log import (
    MANIFEST_NAME,
    REC_EVENT,
    EventLogReader,
    EventLogWriter,
    ReplayStats,
    StoreError,
    compact,
)
from repro.store.sync import SyncPolicy
from repro.stream.events import Characters, EndElement, StartElement
from repro.stream.recovery import ResourceLimits
from repro.stream.tokenizer import parse_string

from tests.test_push_equivalence import random_document


def write_document(path, text, *, segment_events=64, checkpoint_interval=0,
                   sync="none", close=True):
    writer = EventLogWriter(
        path, segment_events=segment_events,
        checkpoint_interval=checkpoint_interval, sync=sync,
    )
    events = list(parse_string(text))
    writer.extend(events)
    if close:
        writer.close()
    return writer, events


class TestWriterReader:
    def test_round_trip_single_segment(self, tmp_path):
        store = str(tmp_path / "s")
        _, events = write_document(store, random_document(3), segment_events=10_000)
        reader = EventLogReader(store)
        assert list(reader.events()) == events
        assert reader.position == len(events)

    def test_rotation_preserves_order(self, tmp_path):
        store = str(tmp_path / "s")
        text = "<r>" + "".join(f"<a><b>{i}</b></a>" for i in range(40)) + "</r>"
        writer, events = write_document(store, text, segment_events=16)
        reader = EventLogReader(store)
        segments = reader.segments()
        assert len(segments) > 1
        assert all(segment.sealed for segment in segments)
        assert [segment.base_event for segment in segments] == sorted(
            segment.base_event for segment in segments
        )
        assert list(reader.events()) == events

    def test_push_handler_tee_equals_append(self, tmp_path):
        text = random_document(7)
        a, events = write_document(str(tmp_path / "a"), text, segment_events=32)
        writer = EventLogWriter(str(tmp_path / "b"), segment_events=32, sync="none")
        for event in events:
            if isinstance(event, StartElement):
                writer.start_element(event.tag, event.level, event.node_id,
                                     event.attributes)
            elif isinstance(event, Characters):
                writer.characters(event.text, event.level)
            else:
                writer.end_element(event.tag, event.level)
        writer.close()
        assert list(EventLogReader(str(tmp_path / "b")).events()) == events

    def test_segment_summary_matches_content(self, tmp_path):
        store = str(tmp_path / "s")
        write_document(store, "<r><a x='1'>text</a><b/></r>", segment_events=100)
        (segment,) = EventLogReader(store).segments()
        assert segment.tags == {"r", "a", "b"}
        assert segment.has_text
        assert segment.min_level == 1 and segment.max_level == 2
        assert segment.events == 7  # 3 starts + 1 text + 3 ends

    def test_start_event_positioning(self, tmp_path):
        store = str(tmp_path / "s")
        _, events = write_document(store, random_document(11), segment_events=8)
        reader = EventLogReader(store)
        for start in (0, 1, len(events) // 2, len(events) - 1, len(events)):
            assert list(reader.events(start)) == events[start:]

    def test_reader_requires_manifest(self, tmp_path):
        with pytest.raises(StoreError, match="not a store"):
            EventLogReader(str(tmp_path / "missing"))

    def test_closed_writer_refuses_appends(self, tmp_path):
        store = str(tmp_path / "s")
        writer, _ = write_document(store, "<r><a/></r>")
        with pytest.raises(StoreError, match="closed"):
            writer.append(EndElement("r", 1))

    def test_reader_sees_live_unsealed_tail(self, tmp_path):
        store = str(tmp_path / "s")
        writer = EventLogWriter(store, segment_events=4, sync="none")
        events = list(parse_string("<r><a/><b/><c/><d/><e/></r>"))
        writer.extend(events)
        writer.flush()
        reader = EventLogReader(store)
        assert list(reader.events()) == events
        assert not reader.segments()[-1].sealed
        writer.close()


class TestRecovery:
    def _torn_store(self, tmp_path, cut: int):
        """A store whose active segment lost ``cut`` trailing bytes."""
        store = str(tmp_path / "s")
        writer = EventLogWriter(store, segment_events=32, sync="none")
        events = list(parse_string(random_document(9)))
        writer.extend(events)
        writer.flush()
        active = os.path.join(store, writer._manifest.active)
        # Abandon the writer (simulated crash), then tear the tail.
        size = os.path.getsize(active)
        with open(active, "r+b") as handle:
            handle.truncate(size - cut)
        return store, events

    @pytest.mark.parametrize("cut", [1, 3, 5])
    def test_torn_tail_truncated_to_good_prefix(self, tmp_path, cut):
        store, events = self._torn_store(tmp_path, cut)
        recovered = EventLogWriter(store, segment_events=32, sync="none")
        assert recovered.recovered_tail_bytes > 0
        assert recovered.position < len(events)
        survivors = events[: recovered.position]
        recovered.extend(events[recovered.position:])
        recovered.close()
        assert list(EventLogReader(store).events()) == events

    def test_corrupt_middle_of_active_truncates_there(self, tmp_path):
        store, events = self._torn_store(tmp_path, 0)
        active = os.path.join(
            store, json.load(open(os.path.join(store, MANIFEST_NAME)))["active"]
        )
        data = bytearray(open(active, "rb").read())
        data[len(data) // 2] ^= 0xFF  # flip a bit mid-file
        open(active, "wb").write(bytes(data))
        recovered = EventLogWriter(store, segment_events=32, sync="none")
        assert 0 < recovered.position < len(events)
        assert recovered.recovered_tail_bytes > 0

    def test_garbage_active_file_is_replaced(self, tmp_path):
        store, events = self._torn_store(tmp_path, 0)
        active = os.path.join(
            store, json.load(open(os.path.join(store, MANIFEST_NAME)))["active"]
        )
        open(active, "wb").write(b"not frames at all")
        recovered = EventLogWriter(store, segment_events=32, sync="none")
        # Sealed history intact; active segment restarted at its base.
        assert recovered.position == recovered._segment.base_event
        recovered.close()
        survivors = list(EventLogReader(store).events())
        assert survivors == events[: len(survivors)]

    def test_reopen_cleanly_closed_store_continues_positions(self, tmp_path):
        store = str(tmp_path / "s")
        _, first = write_document(store, "<r><a/><b/></r>", segment_events=3)
        writer = EventLogWriter(store, segment_events=3, sync="none")
        assert writer.position == len(first)
        more = list(parse_string("<r2><c/></r2>"))
        writer.extend(more)
        writer.close()
        assert list(EventLogReader(store).events()) == first + more

    def test_sealed_segment_corruption_raises(self, tmp_path):
        store = str(tmp_path / "s")
        write_document(store, random_document(4), segment_events=8)
        reader = EventLogReader(store)
        sealed = reader.segments()[0]
        path = os.path.join(store, sealed.file)
        data = bytearray(open(path, "rb").read())
        data[-3] ^= 0xFF
        open(path, "wb").write(bytes(data))
        with pytest.raises(StoreError, match="corrupt sealed segment"):
            list(EventLogReader(store).events())

    def test_corrupt_manifest_raises(self, tmp_path):
        store = str(tmp_path / "s")
        write_document(store, "<r/>")
        open(os.path.join(store, MANIFEST_NAME), "w").write("{broken")
        with pytest.raises(StoreError, match="corrupt store manifest"):
            EventLogReader(store)


class TestCheckpointsAndCompaction:
    def test_checkpoint_positions(self, tmp_path):
        store = str(tmp_path / "s")
        writer = EventLogWriter(store, segment_events=16,
                                checkpoint_interval=10, sync="none")
        events = list(parse_string(random_document(6)))
        writer.extend(events)
        final = writer.checkpoint()
        writer.close()
        reader = EventLogReader(store)
        checkpoints = reader.checkpoints()
        assert [c.id for c in checkpoints] == list(range(1, final + 1))
        for info in checkpoints[:-1]:
            assert info.event % 10 == 0
        assert checkpoints[-1].event == len(events)

    def test_compact_drops_prefix_only(self, tmp_path):
        store = str(tmp_path / "s")
        writer = EventLogWriter(store, segment_events=8,
                                checkpoint_interval=20, sync="none")
        text = "<r>" + "".join(f"<a><b>{i}</b></a>" for i in range(30)) + "</r>"
        events = list(parse_string(text))
        writer.extend(events)
        writer.close()
        reader = EventLogReader(store)
        target = reader.checkpoints()[1]
        summary = compact(store, target.id, sync="none")
        assert summary["segments_dropped"] >= 1
        after = EventLogReader(store)
        floor = after.compacted_before_event
        assert 0 < floor <= target.event
        assert list(after.events(floor)) == events[floor:]
        with pytest.raises(StoreError, match="compacted"):
            list(after.events(0))

    def test_compact_requires_closed_store(self, tmp_path):
        store = str(tmp_path / "s")
        writer = EventLogWriter(store, sync="none")
        writer.append(StartElement("r", 1, 1, {}))
        writer.checkpoint()
        writer.flush()
        with pytest.raises(StoreError, match="active writer"):
            compact(store, 1)
        writer.close()

    def test_compact_unknown_checkpoint(self, tmp_path):
        store = str(tmp_path / "s")
        write_document(store, "<r/>")
        with pytest.raises(StoreError, match="no checkpoint 99"):
            compact(store, 99)


class TestLimitsOnLogBytes:
    def test_decode_limits_enforced_during_read(self, tmp_path):
        store = str(tmp_path / "s")
        write_document(store, "<r>" + "<a>" * 30 + "</a>" * 30 + "</r>")
        reader = EventLogReader(store, limits=ResourceLimits(max_depth=10))
        with pytest.raises(Exception, match="max_depth"):
            list(reader.events())

    def test_max_total_events_bounds_replay(self, tmp_path):
        store = str(tmp_path / "s")
        write_document(store, random_document(2))
        reader = EventLogReader(store, limits=ResourceLimits(max_total_events=5))
        with pytest.raises(Exception, match="max_total_events"):
            list(reader.events())

    def test_hostile_record_injected_into_segment(self, tmp_path):
        """A CRC-valid frame containing a depth bomb must be caught."""
        from repro.stream.codec import encode_event

        store = str(tmp_path / "s")
        writer = EventLogWriter(store, sync="none")
        writer.append(StartElement("r", 1, 1, {}))
        active = os.path.join(store, writer._manifest.active)
        writer.flush()
        bomb = encode_frame(REC_EVENT, encode_event(StartElement("x", 10**6, 2, {})))
        with open(active, "ab") as handle:
            handle.write(bomb)
        reader = EventLogReader(store, limits=ResourceLimits(max_depth=64))
        with pytest.raises(Exception, match="max_depth"):
            list(reader.events())
        # Without limits the bomb decodes (it is structurally valid).
        assert len(list(EventLogReader(store).events())) == 2
        writer.close()


class TestSyncPolicy:
    def test_coerce_spellings(self):
        assert SyncPolicy.coerce(None).kind == "always"
        assert SyncPolicy.coerce("none").kind == "none"
        policy = SyncPolicy.coerce("interval:7")
        assert (policy.kind, policy.interval) == ("interval", 7)
        assert SyncPolicy.coerce(policy) is policy
        assert policy.to_str() == "interval:7"

    def test_invalid_spellings(self):
        with pytest.raises(ValueError):
            SyncPolicy.coerce("sometimes")
        with pytest.raises(ValueError):
            SyncPolicy("interval", 0)
        with pytest.raises(TypeError):
            SyncPolicy.coerce(42)

    def test_should_sync_cadence(self):
        always, never = SyncPolicy("always"), SyncPolicy("none")
        every3 = SyncPolicy("interval", 3)
        assert always.should_sync(1) and not never.should_sync(10**6)
        assert [every3.should_sync(n) for n in (1, 2, 3, 4)] == [
            False, False, True, True,
        ]

    @pytest.mark.parametrize("sync", ["always", "interval:4", "none"])
    def test_log_contents_identical_across_policies(self, tmp_path, sync):
        store = str(tmp_path / sync.replace(":", "_"))
        _, events = write_document(store, random_document(8), sync=sync)
        assert list(EventLogReader(store).events()) == events

    def test_writer_sync_counts(self, tmp_path, monkeypatch):
        import repro.store.sync as sync_mod

        calls = []
        monkeypatch.setattr(sync_mod.os, "fsync", lambda fd: calls.append(fd))
        store = str(tmp_path / "s")
        writer = EventLogWriter(store, sync="interval:5", segment_events=10_000)
        for event in parse_string(random_document(10)):
            writer.append(event)
        appended = writer.position
        mid_count = len(calls)
        assert mid_count >= appended // 5 - 1
        writer.close()
        assert len(calls) > mid_count  # seal forces a final sync
