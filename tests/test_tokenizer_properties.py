"""Property-based tests for the XML tokenizer (Hypothesis).

Three classes of property:

* **robustness** — arbitrary junk input either parses or raises
  :class:`XmlSyntaxError`; nothing else ever escapes;
* **chunking invariance** — any split of a document into feed chunks
  yields exactly the same event stream as parsing it whole;
* **agreement** — the pure-Python tokenizer and the Expat adapter agree
  on every generated document.
"""

from hypothesis import example, given, settings, strategies as st

from repro.errors import XmlSyntaxError
from repro.stream.expat_source import expat_parse_string
from repro.stream.tokenizer import parse_chunks, parse_string

# -- generated well-formed documents ----------------------------------------

_TEXT_ALPHABET = st.sampled_from(list("abz019 \t\n&<>'\"é¿"))


@st.composite
def xml_documents(draw, depth=0):
    tag = draw(st.sampled_from(["a", "b", "node", "x-y", "_u"]))
    n_attrs = draw(st.integers(0, 2))
    attrs = ""
    for index in range(n_attrs):
        raw = draw(st.text(_TEXT_ALPHABET, max_size=6))
        value = (
            raw.replace("&", "&amp;").replace("<", "&lt;").replace('"', "&quot;")
        )
        attrs += f' k{index}="{value}"'
    if depth >= 3:
        children = []
    else:
        children = draw(st.lists(xml_documents(depth=depth + 1), max_size=3))
    raw_text = draw(st.text(_TEXT_ALPHABET, max_size=8))
    text = raw_text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    if not children and draw(st.booleans()):
        return f"<{tag}{attrs}/>"
    return f"<{tag}{attrs}>{text}{''.join(children)}</{tag}>"


@settings(max_examples=200, deadline=None)
@given(xml=xml_documents(), chunk_size=st.integers(1, 20))
def test_chunked_parsing_equals_whole(xml, chunk_size):
    whole = list(parse_string(xml, skip_whitespace=False))
    chunks = [xml[i:i + chunk_size] for i in range(0, len(xml), chunk_size)]
    assert list(parse_chunks(chunks, skip_whitespace=False)) == whole


@settings(max_examples=200, deadline=None)
@given(xml=xml_documents())
def test_expat_adapter_agrees(xml):
    ours = list(parse_string(xml, skip_whitespace=False))
    theirs = list(expat_parse_string(xml, skip_whitespace=False))
    assert theirs == ours


# -- robustness on junk -------------------------------------------------------

_JUNK_ALPHABET = st.sampled_from(list("<>/=\"'&;! abc-?[]"))


@settings(max_examples=400, deadline=None)
@given(junk=st.text(_JUNK_ALPHABET, max_size=40))
@example(junk="<a><b></a></b>")
@example(junk="<a b=>")
@example(junk="<!DOCTYPE")
@example(junk="<![CDATA[x")
@example(junk="&&&&")
@example(junk="<a/><a/>")
def test_junk_never_crashes(junk):
    """Arbitrary input parses or raises XmlSyntaxError — never anything else."""
    try:
        list(parse_string(junk))
    except XmlSyntaxError:
        pass


@settings(max_examples=200, deadline=None)
@given(junk=st.text(_JUNK_ALPHABET, max_size=30), chunk_size=st.integers(1, 5))
def test_junk_never_crashes_chunked(junk, chunk_size):
    chunks = [junk[i:i + chunk_size] for i in range(0, len(junk), chunk_size)]
    try:
        list(parse_chunks(chunks))
    except XmlSyntaxError:
        pass


@settings(max_examples=100, deadline=None)
@given(xml=xml_documents(), cut=st.integers(0, 100))
def test_truncated_documents_fail_cleanly(xml, cut):
    """A prefix of a document either parses (if it happens to be complete)
    or raises XmlSyntaxError at close — no hangs, no other errors."""
    prefix = xml[: min(cut, len(xml))]
    try:
        list(parse_string(prefix))
    except XmlSyntaxError:
        pass
