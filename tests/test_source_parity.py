"""Error parity: both event sources reject the same malformed corpus
with the same exception shape and comparable positions."""

from __future__ import annotations

import pytest

from repro.errors import XmlSyntaxError
from repro.stream.expat_source import ExpatSource, expat_parse_string
from repro.stream.tokenizer import XmlTokenizer, parse_string

#: Malformed documents both sources must reject.  Both report the same
#: line; columns may differ because the pure tokenizer points at the end
#: of the offending construct while Expat points at its start.
MALFORMED_CORPUS = [
    "<a><1bad/></a>",
    "<a></b>",
    "<a><b></a>",
    "<a>&nosuch;</a>",
    "<a/><b/>",
    "plain text",
    "<a attr=oops/>",
    "<a><!bogus></a>",
    "<a>< b/></a>",
    "<a attr='x' attr='y'/>",
    "<>",
    "<a",
]

COLUMN_TOLERANCE = 16


def failure_of(parse, text: str) -> XmlSyntaxError:
    with pytest.raises(XmlSyntaxError) as info:
        list(parse(text))
    return info.value


@pytest.mark.parametrize("text", MALFORMED_CORPUS)
def test_both_sources_reject(text):
    tok = failure_of(parse_string, text)
    expat = failure_of(expat_parse_string, text)
    assert tok.line == expat.line
    assert abs(tok.column - expat.column) <= COLUMN_TOLERANCE


@pytest.mark.parametrize("text", MALFORMED_CORPUS)
def test_error_shape_is_uniform(text):
    """Both sources raise XmlSyntaxError with int line/column (1-based)
    and a location-free ``raw_message`` for diagnostics."""
    for parse in (parse_string, expat_parse_string):
        exc = failure_of(parse, text)
        assert isinstance(exc.line, int) and exc.line >= 1
        assert isinstance(exc.column, int) and exc.column >= 1
        assert exc.raw_message
        assert "line" not in exc.raw_message.split(" at ")[-1] or True
        assert str(exc).endswith(f"at line {exc.line}, column {exc.column}")


def test_multiline_position_parity():
    text = "<a>\n  <b>\n</a>"
    tok = failure_of(parse_string, text)
    expat = failure_of(expat_parse_string, text)
    assert tok.line == expat.line == 3


class TestLifecycleParity:
    """feed()-after-close() and double-close() behave alike."""

    def make_sources(self):
        return XmlTokenizer(), ExpatSource()

    def test_feed_after_close_raises_in_both(self):
        for source in self.make_sources():
            list(source.feed("<a/>"))
            source.close()
            with pytest.raises(XmlSyntaxError, match="after close"):
                list(source.feed("<b/>"))

    def test_double_close_is_idempotent_in_both(self):
        for source in self.make_sources():
            list(source.feed("<a/>"))
            first = list(source.close())
            second = list(source.close())
            assert first == [] and second == []

    def test_empty_feed_is_noop_in_both(self):
        for source in self.make_sources():
            assert list(source.feed("")) == []
            list(source.feed("<a/>"))
            source.close()


def test_well_formed_corpus_produces_identical_events():
    corpus = [
        "<a><b>text</b><b/></a>",
        "<r a='1' b='2'><c/>tail</r>",
        "<x>&lt;&amp;&gt;</x>",
        "<u>café ☃</u>",
    ]
    for text in corpus:
        assert list(parse_string(text)) == list(expat_parse_string(text)), text
