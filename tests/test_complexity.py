"""Tests for the empirical complexity fitter (repro.bench.complexity)."""

import pytest

from repro.bench.complexity import (
    CHAIN_QUERY,
    ScalingSeries,
    chain_document,
    chain_scaling,
    fit_exponent,
    render_chain_scaling,
)
from repro.core.processor import evaluate


class TestFitExponent:
    def test_linear(self):
        assert abs(fit_exponent([10, 20, 40], [10, 20, 40]) - 1.0) < 1e-9

    def test_quadratic(self):
        sizes = [10, 20, 40]
        assert abs(fit_exponent(sizes, [s * s for s in sizes]) - 2.0) < 1e-9

    def test_constant(self):
        assert abs(fit_exponent([10, 20, 40], [7, 7, 7])) < 1e-9

    def test_scale_invariant(self):
        sizes = [8, 16, 32, 64]
        k = fit_exponent(sizes, [3.5 * s ** 1.5 for s in sizes])
        assert abs(k - 1.5) < 1e-9

    def test_zero_costs_do_not_explode(self):
        k = fit_exponent([10, 20], [0.0, 0.0])
        assert k == 0.0


class TestChainDocument:
    def test_structure(self):
        xml = chain_document(3)
        assert xml.count("<a>") == 3 and xml.count("<b>") == 3
        assert xml.count("<d/>") == 1 and xml.count("<e/>") == 1

    def test_single_solution(self):
        for n in (1, 2, 5):
            assert len(evaluate(CHAIN_QUERY, chain_document(n))) == 1


class TestChainScaling:
    @pytest.fixture(scope="class")
    def series(self):
        measured = chain_scaling(sizes=(20, 40, 80), repeats=1)
        return {entry.label: entry for entry in measured}

    def test_all_series_present(self, series):
        assert {"TwigM operations", "TwigM peak entries",
                "XSQ* peak records", "Galax* enumerated"} <= set(series)

    def test_twigm_is_linear(self, series):
        assert series["TwigM operations"].exponent < 1.2
        assert series["TwigM peak entries"].exponent < 1.1

    def test_explicit_is_quadratic(self, series):
        assert series["XSQ* peak records"].exponent > 1.8

    def test_enumerative_is_quadratic(self, series):
        assert series["Galax* enumerated"].exponent > 1.8

    def test_enumerative_series_capped(self):
        measured = chain_scaling(sizes=(20, 200), repeats=1, enumerative_cap=50)
        labels = [entry.label for entry in measured]
        assert "Galax* enumerated" not in labels  # only one size ≤ cap

    def test_render(self, series):
        text = render_chain_scaling(list(series.values()))
        assert "fitted k" in text
        assert "TwigM peak entries" in text

    def test_row_shape(self):
        entry = ScalingSeries("s", (2, 4), (2.0, 4.0))
        row = entry.row()
        assert row["series"] == "s"
        assert row["fitted k"] == 1.0
