"""Alphabet router (repro.multiq.router): static interest analysis.

The router may only skip a machine on events it provably cannot react
to; every test here pins filtered dispatch against unfiltered evaluation
— wildcards, ``//`` closures under recursion, tags absent from every
query, character data, and queries added/removed mid-stream.
"""

from __future__ import annotations

from repro.core.processor import XPathStream
from repro.multiq import MultiQueryEngine, machine_alphabet
from repro.multiq.registry import EvalUnit
from repro.multiq.router import AlphabetRouter
from repro.stream.recovery import ResourceLimits
from repro.stream.tokenizer import parse_string
from repro.xpath.querytree import compile_query

from tests.conftest import chain_xml


def unit_for(query: str, limits: ResourceLimits | None = None) -> EvalUnit:
    return EvalUnit(compile_query(query), limits)


class TestMachineAlphabet:
    def test_plain_path_interest_is_its_tags(self):
        labels, wants_all, wants_text = machine_alphabet(
            unit_for("//a[b]//c").engine.machine
        )
        assert labels == {"a", "b", "c"}
        assert not wants_all and not wants_text

    def test_materialized_wildcard_wants_all(self):
        _labels, wants_all, _ = machine_alphabet(unit_for("//a//*").engine.machine)
        assert wants_all

    def test_interior_wildcard_folds_away(self):
        """``/a/*/b`` routes on {a, b}: the ``*`` step folds into the
        parent-edge distance during machine construction."""
        labels, wants_all, _ = machine_alphabet(unit_for("/a/*/b").engine.machine)
        assert labels == {"a", "b"}
        assert not wants_all

    def test_value_test_wants_text(self):
        _labels, _, wants_text = machine_alphabet(
            unit_for("//book[price < 30]").engine.machine
        )
        assert wants_text
        _labels, _, wants_text = machine_alphabet(unit_for("//book").engine.machine)
        assert not wants_text


class TestRouterIndex:
    def test_units_for_tag_partitions_by_interest(self):
        router = AlphabetRouter()
        ab, cd, star = unit_for("//a/b"), unit_for("//c/d"), unit_for("//e//*")
        for unit in (ab, cd, star):
            router.add(unit)
        assert router.units_for_tag("a") == [ab, star]
        assert router.units_for_tag("d") == [cd, star]
        assert router.units_for_tag("zzz") == [star]  # absent tag: wildcards only

    def test_remove_invalidates_index(self):
        router = AlphabetRouter()
        ab, ac = unit_for("//a/b"), unit_for("//a/c")
        router.add(ab)
        router.add(ac)
        assert router.units_for_tag("a") == [ab, ac]
        router.remove(ab)
        assert router.units_for_tag("a") == [ac]
        assert router.units_for_tag("b") == []

    def test_limited_units_stay_off_the_routed_path(self):
        router = AlphabetRouter()
        limited = unit_for("//a", ResourceLimits(max_depth=100))
        router.add(limited)
        assert router.units_for_tag("a") == []
        assert router.limited_units() == [limited]

    def test_text_units(self):
        router = AlphabetRouter()
        valued, plain = unit_for("//a[b = 'x']"), unit_for("//a")
        router.add(valued)
        router.add(plain)
        assert router.text_units() == [valued]


class EquivalenceMixin:
    """Routed multi-query results must equal independent evaluation."""

    def check(self, queries: dict[str, str], xml: str) -> None:
        events = list(parse_string(xml))
        routed = MultiQueryEngine(queries)
        routed.feed_events(events)
        for name, query in queries.items():
            alone = XPathStream(query).evaluate(iter(events))
            assert routed.results()[name] == alone, (name, query)


class TestRoutedEquivalence(EquivalenceMixin):
    def test_absent_tags_are_skipped_harmlessly(self):
        self.check(
            {"hit": "//a//b", "miss": "//x//y", "deep": "//nowhere[at = 'all']"},
            chain_xml(3),
        )

    def test_recursive_tags_end_tag_consistency(self):
        """Every aᵢ start/end reaches the //a//b machine under recursion;
        levels keep the stacks consistent even though unrelated tags in
        between were never delivered."""
        xml = "<a><z><a><z/><b/></a></z><b/></a>"
        self.check({"ab": "//a//b", "za": "//z//a", "only_z": "/a/z"}, xml)

    def test_wildcard_machines_see_everything(self):
        self.check(
            {"star": "//a//*", "narrow": "//a/b", "top": "/a/*"},
            "<a><b><c/></b><d/></a>",
        )

    def test_characters_only_reach_value_machines(self):
        xml = (
            "<lib><book><price>25</price><title>A</title></book>"
            "<book><price>60</price><title>B</title></book></lib>"
        )
        self.check(
            {"cheap": "//book[price < 30]/title", "titles": "//title"}, xml
        )


class TestMidStreamLifecycle:
    XML = "<r><a><b/></a><a><b/><b/></a><a/></r>"

    def test_mid_stream_add_matches_fresh_evaluation(self):
        """A query added at an event boundary sees exactly what a fresh
        dedicated stream started at that boundary would see."""
        events = list(parse_string(self.XML))
        for cut in range(len(events) + 1):
            engine = MultiQueryEngine({"early": "//a/b"})
            engine.feed_events(events[:cut])
            engine.add_query("late", "//a/b")
            engine.feed_events(events[cut:])

            fresh = XPathStream("//a/b").evaluate(iter(events[cut:]))
            assert engine.results()["late"] == fresh, cut
            # ...and the standing query is unaffected by the add
            assert engine.results()["early"] == XPathStream("//a/b").evaluate(
                iter(events)
            ), cut

    def test_mid_stream_add_never_joins_a_warm_machine(self):
        events = list(parse_string(self.XML))
        engine = MultiQueryEngine({"early": "//a/b"})
        engine.feed_events(events[:4])
        engine.add_query("late", "//a/b")  # same query, warm machine
        assert engine.unit_count() == 2

    def test_add_before_any_event_still_shares(self):
        engine = MultiQueryEngine({"one": "//a/b"})
        engine.add_query("two", "//a/b")
        assert engine.unit_count() == 1

    def test_mid_stream_remove_leaves_others_exact(self):
        events = list(parse_string(self.XML))
        engine = MultiQueryEngine({"keep": "//a/b", "drop": "//a"})
        engine.feed_events(events[:5])
        engine.remove_query("drop")
        engine.feed_events(events[5:])
        assert "drop" not in engine.names
        assert engine.results() == {
            "keep": XPathStream("//a/b").evaluate(iter(events))
        }

    def test_remove_one_sharer_keeps_the_machine_for_the_rest(self):
        events = list(parse_string(self.XML))
        engine = MultiQueryEngine({"one": "//a/b", "two": "//a/b"})
        engine.feed_events(events[:5])
        engine.remove_query("one")
        engine.feed_events(events[5:])
        assert engine.unit_count() == 1
        assert engine.results()["two"] == XPathStream("//a/b").evaluate(iter(events))
