"""Differential suite: the push pipeline must be byte-identical to pull.

The pull pipeline (event objects from a generator) is the reference
implementation; the fused push pipeline (regex scan → direct machine
callbacks) is the optimisation.  Every behaviour — emitted events,
solution ids, recovery diagnostics, resource-limit errors, checkpoint
round-trips — is compared across the two over the seed corpora and a
few hundred seeded random documents.
"""

from __future__ import annotations

import random

import pytest

from repro import MultiQueryEngine, XPathStream, evaluate_push
from repro.core.filtering import FilterSet
from repro.errors import ResourceLimitError, XmlSyntaxError
from repro.stream.events import EventCollector
from repro.stream.faults import byte_split_chunks, corrupt_text
from repro.stream.recovery import ResourceLimits
from repro.stream.tokenizer import XmlTokenizer

from tests.conftest import chain_xml

#: Queries covering all three machines, wildcards, value tests and '//'.
QUERIES = (
    "//a//b",
    "/catalog/book/title",
    "//book[price < 30]//title",
    "//section[title]/p",
    "//*[price]",
    "//book[author/last = 'Chen']/title",
)

VOCAB = ("a", "b", "book", "title", "price", "author", "last", "section", "p")


def random_document(seed: int) -> str:
    """A seeded, well-formed document over the query vocabulary."""
    rng = random.Random(seed)
    parts = ["<catalog>"]
    depth = 1

    def emit(budget: int) -> None:
        nonlocal depth
        for _ in range(budget):
            roll = rng.random()
            tag = rng.choice(VOCAB)
            if roll < 0.45 and depth < 12:
                attrs = ""
                if rng.random() < 0.3:
                    attrs = f" id='n{rng.randrange(100)}'"
                parts.append(f"<{tag}{attrs}>")
                depth += 1
                emit(rng.randrange(0, 4))
                depth -= 1
                parts.append(f"</{tag}>")
            elif roll < 0.6:
                parts.append(f"<{tag}/>")
            elif roll < 0.8:
                parts.append(str(rng.randrange(0, 100)))
            elif roll < 0.9:
                parts.append(f"<!-- c{rng.randrange(10)} -->")
            else:
                parts.append(f"text &amp; {rng.randrange(10)}")

    emit(rng.randrange(3, 10))
    parts.append("</catalog>")
    return "".join(parts)


def pull_events(text: str, chunks=None, **options) -> list:
    tokenizer = XmlTokenizer(**options)
    events = []
    for chunk in chunks if chunks is not None else [text]:
        events.extend(tokenizer.feed(chunk))
    events.extend(tokenizer.close())
    return events, tokenizer.diagnostics


def push_events(text: str, chunks=None, **options) -> list:
    tokenizer = XmlTokenizer(**options)
    collector = EventCollector()
    for chunk in chunks if chunks is not None else [text]:
        tokenizer.feed_into(chunk, collector)
    tokenizer.close_into(collector)
    return collector.events, tokenizer.diagnostics


class TestTokenizerEquivalence:
    def test_seed_corpora(self, book_catalog_xml, figure1_xml):
        for text in (book_catalog_xml, figure1_xml, chain_xml(7)):
            assert push_events(text) == pull_events(text)

    @pytest.mark.parametrize("seed", range(200))
    def test_random_documents(self, seed):
        text = random_document(seed)
        assert push_events(text) == pull_events(text)

    @pytest.mark.parametrize("seed", range(40))
    def test_random_chunkings(self, seed):
        text = random_document(seed)
        chunks = byte_split_chunks(text, seed=seed, max_chunk=7)
        assert push_events(text, chunks) == pull_events(text, chunks)

    @pytest.mark.parametrize("policy", ["skip", "repair"])
    @pytest.mark.parametrize("seed", range(30))
    def test_lenient_policies_on_corrupt_input(self, policy, seed):
        text, _faults = corrupt_text(random_document(seed), seed=seed, faults=3)
        chunks = byte_split_chunks(text, seed=seed, max_chunk=11)
        assert push_events(text, chunks, policy=policy) == pull_events(
            text, chunks, policy=policy
        )

    def test_strict_policy_raises_identically(self):
        text = "<root><a><b></a></root>"
        with pytest.raises(XmlSyntaxError) as pull_error:
            pull_events(text)
        with pytest.raises(XmlSyntaxError) as push_error:
            push_events(text)
        assert str(push_error.value) == str(pull_error.value)

    def test_skip_whitespace_option(self):
        text = "<root>\n  <a>x</a>\n  <b/>\n</root>"
        assert push_events(text, skip_whitespace=True) == pull_events(
            text, skip_whitespace=True
        )
        assert push_events(text, skip_whitespace=False) == pull_events(
            text, skip_whitespace=False
        )


class TestEngineEquivalence:
    @pytest.mark.parametrize("query", QUERIES)
    def test_seed_corpus(self, query, book_catalog_xml):
        assert evaluate_push(query, book_catalog_xml) == XPathStream(query).evaluate(
            book_catalog_xml
        )

    @pytest.mark.parametrize("query", QUERIES)
    @pytest.mark.parametrize("seed", range(25))
    def test_random_documents(self, query, seed):
        text = random_document(seed)
        assert evaluate_push(query, text) == XPathStream(query).evaluate(text)

    @pytest.mark.parametrize("engine", ["pathm", "twigm"])
    def test_forced_engines(self, engine, figure1_xml):
        pull = XPathStream("//a//b", engine=engine).evaluate(figure1_xml)
        push = XPathStream("//a//b", engine=engine).evaluate_push(figure1_xml)
        assert push == pull

    def test_on_match_streaming_order(self, book_catalog_xml):
        pull_order, push_order = [], []
        XPathStream("//title", on_match=pull_order.append).evaluate(book_catalog_xml)
        XPathStream("//title", on_match=push_order.append).evaluate_push(
            book_catalog_xml
        )
        assert push_order == pull_order and push_order

    def test_file_source(self, tmp_path, book_catalog_xml):
        path = tmp_path / "catalog.xml"
        path.write_text(book_catalog_xml, encoding="utf-8")
        assert evaluate_push("//book//title", path) == XPathStream(
            "//book//title"
        ).evaluate(str(path))

    def test_mixed_pull_push_chunks(self, book_catalog_xml):
        expected = XPathStream("//book//title").evaluate(book_catalog_xml)
        stream = XPathStream("//book//title")
        for index, chunk in enumerate(
            byte_split_chunks(book_catalog_xml, seed=5, max_chunk=9)
        ):
            if index % 2:
                stream.feed_text(chunk)
            else:
                stream.feed_text_push(chunk)
        assert stream.close() == expected


class TestLimitsParity:
    def _limited(self, push: bool, text: str, limits: ResourceLimits):
        stream = XPathStream("//a//b", limits=limits)
        if push:
            return stream.evaluate_push(text)
        return stream.evaluate(text)

    @pytest.mark.parametrize(
        "limits",
        [
            ResourceLimits(max_depth=5),
            ResourceLimits(max_total_events=10),
            ResourceLimits(max_attributes=1),
            ResourceLimits(max_attribute_length=3),
        ],
    )
    def test_limit_errors_identical(self, limits, figure1_xml):
        text = figure1_xml.replace("<a>", "<a x='long value' y='2'>", 1)
        pull_error = push_error = None
        try:
            pull_result = self._limited(False, text, limits)
        except ResourceLimitError as exc:
            pull_error = str(exc)
        try:
            push_result = self._limited(True, text, limits)
        except ResourceLimitError as exc:
            push_error = str(exc)
        assert push_error == pull_error
        if pull_error is None:
            assert push_result == pull_result

    def test_generous_limits_do_not_change_results(self, book_catalog_xml):
        limits = ResourceLimits(max_depth=100, max_total_events=100_000)
        assert self._limited(True, book_catalog_xml, limits) == self._limited(
            False, book_catalog_xml, limits
        )


class TestCheckpointMidPush:
    def test_snapshot_restore_between_push_chunks(self, book_catalog_xml):
        expected = XPathStream("//book[price < 30]//title").evaluate(book_catalog_xml)
        chunks = byte_split_chunks(book_catalog_xml, seed=9, max_chunk=13)
        stream = XPathStream("//book[price < 30]//title")
        half = len(chunks) // 2
        for chunk in chunks[:half]:
            stream.feed_text_push(chunk)
        resumed = XPathStream.restore(stream.snapshot())
        for chunk in chunks[half:]:
            resumed.feed_text_push(chunk)
        assert resumed.close() == expected

    @pytest.mark.parametrize("seed", range(10))
    def test_snapshot_every_boundary_random_docs(self, seed):
        text = random_document(seed)
        expected = XPathStream("//a//b").evaluate(text)
        chunks = byte_split_chunks(text, seed=seed, max_chunk=31)
        for cut in range(len(chunks) + 1):
            stream = XPathStream("//a//b")
            for chunk in chunks[:cut]:
                stream.feed_text_push(chunk)
            resumed = XPathStream.restore(stream.snapshot())
            for chunk in chunks[cut:]:
                resumed.feed_text_push(chunk)
            assert resumed.close() == expected, f"cut at chunk {cut}"


class TestMultiQueryAndFilterParity:
    QUERY_SET = {
        "titles": "//title",
        "cheap": "//book[price < 30]/title",
        "chains": "//a//b",
        "wild": "//book//*",
    }

    def test_multiq_engine(self, book_catalog_xml):
        pull = MultiQueryEngine(self.QUERY_SET)
        pull.feed_text(book_catalog_xml)
        pull_results = pull.close()
        push = MultiQueryEngine(self.QUERY_SET)
        push_results = push.evaluate_push(book_catalog_xml)
        assert push_results == pull_results
        assert push.dispatch_stats().events == pull.dispatch_stats().events

    def test_filter_set(self, book_catalog_xml):
        pull = FilterSet(self.QUERY_SET).evaluate(book_catalog_xml)
        push = FilterSet(self.QUERY_SET).evaluate_push(book_catalog_xml)
        assert push == pull

    @pytest.mark.parametrize("seed", range(10))
    def test_multiq_random_documents(self, seed):
        text = random_document(seed)
        pull = MultiQueryEngine(self.QUERY_SET)
        pull.feed_text(text)
        push = MultiQueryEngine(self.QUERY_SET)
        push_results = push.evaluate_push(text)
        assert push_results == pull.close()
