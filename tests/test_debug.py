"""Tests for machine introspection (repro.core.debug)."""

from repro.core.branchm import BranchM
from repro.core.debug import explain_query, render_machine, render_state, trace
from repro.core.pathm import PathM
from repro.core.twigm import TwigM
from repro.stream.tokenizer import parse_string


class TestRenderMachine:
    def test_figure_4_shape(self):
        machine = TwigM("//a[d]//b[e]//c").machine
        text = render_machine(machine)
        assert "machine for //a[d]//b[e]//c" in text
        assert "<- root" in text
        assert "<- return node" in text
        for label in ("a", "b", "c", "d", "e"):
            assert f"{label} (" in text

    def test_edge_conditions_shown(self):
        text = render_machine(TwigM("//a/*/c").machine)
        assert "(>=,1)" in text  # root edge
        assert "(=,2)" in text   # folded interior '*'

    def test_tests_shown(self):
        text = render_machine(TwigM("//a[@id = '7'][. = 'x']/b").machine)
        assert "@id = '7'" in text
        assert ". = 'x'" in text


class TestRenderState:
    def test_twigm_snapshot_mid_stream(self):
        engine = TwigM("//a[d]//c")
        events = list(parse_string("<a><c/><d/></a>"))
        engine.feed(events[:2])  # <a><c>
        text = render_state(engine)
        assert "<L=1 B=FF" in text  # 'a' entry with two pending branches
        assert "C=[2]" in text      # candidate c recorded

    def test_pathm_snapshot(self):
        engine = PathM("//a//b")
        events = list(parse_string("<a><b><x/></b></a>"))
        engine.feed(events[:2])
        text = render_state(engine)
        assert "<L=1>" in text and "<L=2>" in text

    def test_branchm_snapshot(self):
        engine = BranchM("/a[d]/b")
        events = list(parse_string("<a><b/><d/></a>"))
        engine.feed(events[:2])
        text = render_state(engine)
        assert "<L=1" in text
        assert "(no match)" in text  # the d node has no match yet

    def test_empty_state(self):
        assert "(empty)" in render_state(TwigM("//a"))


class TestTrace:
    def test_trace_yields_event_snapshot_pairs(self):
        engine = TwigM("//a[d]//c")
        pairs = list(trace(engine, parse_string("<a><c/><d/></a>")))
        assert len(pairs) == 6
        events, snapshots = zip(*pairs)
        assert all(isinstance(snapshot, str) for snapshot in snapshots)
        assert engine.results == [2]

    def test_trace_works_for_pathm(self):
        engine = PathM("//a")
        pairs = list(trace(engine, parse_string("<a/>")))
        assert engine.results == [1]
        assert len(pairs) == 2


class TestExplainQuery:
    def test_explains_fragment_and_machine(self):
        text = explain_query("//a/*/c")
        assert "XP{/,//,*}" in text
        assert "PathM" in text
        assert "interior * folded" in text

    def test_explains_twigm_choice(self):
        text = explain_query("//a[d]//c")
        assert "TwigM" in text
