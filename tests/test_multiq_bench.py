"""The standing-query workload and scaling benchmark (repro.bench.multiq)."""

from __future__ import annotations

from repro.bench.multiq import multiq_workload, run_benchmark, xmark_vocabulary
from repro.multiq import MultiQueryEngine, canonicalize


def test_workload_is_deterministic():
    assert multiq_workload(50) == multiq_workload(50)
    assert multiq_workload(50, seed=1) != multiq_workload(50, seed=2)


def test_workload_counts_and_names():
    queries = multiq_workload(137)
    assert len(queries) == 137
    assert list(queries)[0] == "q0000"


def test_workload_queries_all_compile():
    for name, query in multiq_workload(200).items():
        canonicalize(query)  # raises on a malformed spec


def test_workload_contains_duplicates_for_dedup():
    queries = multiq_workload(200)
    engine = MultiQueryEngine(queries)
    assert engine.unit_count() < len(queries)


def test_vocabulary_is_the_auction_dtd():
    vocabulary = xmark_vocabulary()
    assert "item" in vocabulary and "open_auction" in vocabulary
    assert vocabulary == sorted(vocabulary)


def test_run_benchmark_payload_shape():
    payload = run_benchmark(counts=(5, 10), scale=0.05, repeats=1, baseline_cap=5)
    assert payload["benchmark"] == "multiq"
    assert [row["queries"] for row in payload["rows"]] == [5, 10]
    first, second = payload["rows"]
    for row in payload["rows"]:
        assert row["machines"] <= row["queries"]
        assert row["events"] == payload["event_count"]
        assert row["events_per_sec"] > 0
        assert (
            row["machine_events_broadcast"] == row["events"] * row["queries"]
        )
    assert "broadcast_seconds" in first and "broadcast_seconds" not in second
