"""Tests for the DTD content model (repro.datasets.dtd)."""

import random

import pytest

from repro.datasets.dtd import (
    AttributeDecl,
    ElementDecl,
    Particle,
    choice_of,
    constant,
    int_range,
    make_dtd,
    words,
)


def rng():
    return random.Random(7)


class TestSamplers:
    def test_constant(self):
        assert constant("x")(rng()) == "x"

    def test_choice_of(self):
        values = {"a", "b", "c"}
        assert all(choice_of(list(values))(rng()) in values for _ in range(10))

    def test_int_range(self):
        sampler = int_range(5, 7)
        r = rng()
        assert all(5 <= int(sampler(r)) <= 7 for _ in range(20))

    def test_words(self):
        sampler = words(["x", "y"], 2, 4)
        sample = sampler(rng())
        assert 2 <= len(sample.split()) <= 4


class TestDtdValidation:
    def test_root_must_be_declared(self):
        with pytest.raises(ValueError, match="root"):
            make_dtd("missing", [ElementDecl("a")])

    def test_references_must_be_declared(self):
        with pytest.raises(ValueError, match="undeclared"):
            make_dtd("a", [ElementDecl("a", content=(Particle(("ghost",)),))])

    def test_particle_needs_options(self):
        with pytest.raises(ValueError, match="at least one option"):
            Particle(())

    def test_particle_count_ordering(self):
        with pytest.raises(ValueError, match="below"):
            Particle(("a",), min_count=3, max_count=1)

    def test_declaration_lookup(self):
        dtd = make_dtd("a", [ElementDecl("a")])
        assert dtd.declaration("a").name == "a"


class TestRecursionDetection:
    def test_directly_recursive(self):
        dtd = make_dtd(
            "a", [ElementDecl("a", content=(Particle(("a",), 0, 1),))]
        )
        assert dtd.recursive_names() == frozenset({"a"})

    def test_mutually_recursive(self):
        dtd = make_dtd(
            "a",
            [
                ElementDecl("a", content=(Particle(("b",), 0, 1),)),
                ElementDecl("b", content=(Particle(("a",), 0, 1),)),
            ],
        )
        assert dtd.recursive_names() == frozenset({"a", "b"})

    def test_non_recursive(self):
        dtd = make_dtd(
            "a",
            [
                ElementDecl("a", content=(Particle(("b",), 0, 1),)),
                ElementDecl("b"),
            ],
        )
        assert dtd.recursive_names() == frozenset()

    def test_recursion_through_chain(self):
        dtd = make_dtd(
            "a",
            [
                ElementDecl("a", content=(Particle(("b",),),)),
                ElementDecl("b", content=(Particle(("c",),),)),
                ElementDecl("c", content=(Particle(("b",), 0, 1),)),
            ],
        )
        assert dtd.recursive_names() == frozenset({"b", "c"})

    def test_attribute_decl_fields(self):
        decl = AttributeDecl("id", constant("1"), presence=0.5)
        assert decl.name == "id"
        assert decl.presence == 0.5
