"""Tests for the Treebank-style stress corpus and the datasets CLI."""

import pytest

from repro.baselines.navigational import NavigationalDomEngine
from repro.core.processor import XPathStream
from repro.datasets.cli import main as datasets_main
from repro.datasets.stats import collect_stats
from repro.datasets.treebank import treebank_events
from repro.stream.events import StartElement, validate_events


@pytest.fixture(scope="module")
def stats():
    return collect_stats(validate_events(treebank_events(150)))


class TestTreebankCorpus:
    def test_multi_tag_recursion(self, stats):
        """Several tags recurse — deeper stress than Book's one tag."""
        assert {"S", "NP", "VP"} <= stats.recursive_tags

    def test_depth_exceeds_book(self, stats):
        assert stats.max_depth >= 20

    def test_depth_capped_by_config(self, stats):
        assert stats.max_depth <= 36

    def test_pos_vocabulary(self):
        tags = {
            event.tag
            for event in treebank_events(20)
            if isinstance(event, StartElement)
        }
        assert {"corpus", "S", "NP", "VP", "NN", "VB"} <= tags

    def test_deterministic(self):
        assert list(treebank_events(5)) == list(treebank_events(5))

    def test_queries_agree_with_oracle(self):
        events = list(treebank_events(40))
        oracle = NavigationalDomEngine()
        for query in ("//S//NP//NN", "//VP[SBAR]//NN", "//NP[PP]/NN",
                      "//S//S//S", "//NP[not(JJ)]/NN"):
            expected = sorted(oracle.run(query, iter(events)))
            actual = sorted(XPathStream(query).evaluate(iter(events)))
            assert actual == expected, query

    def test_multimatch_pressure(self):
        """A node under k nested S's participates in ~k //S//NN matches —
        the corpus really does generate heavy multi-match load."""
        from repro.core.instrument import InstrumentedTwigM

        events = list(treebank_events(60))
        machine = InstrumentedTwigM("//S[NP]//VP//NN")
        machine.feed(iter(events))
        assert machine.counts.peak_entries > 10
        assert machine.results


class TestDatasetsCli:
    def test_generate_and_stats(self, tmp_path, capsys):
        out = tmp_path / "tb.xml"
        code = datasets_main(
            ["generate", "treebank", "--records", "10", "-o", str(out), "--stats"]
        )
        assert code == 0
        assert out.exists()
        assert "recursive=yes" in capsys.readouterr().out

    @pytest.mark.parametrize("dataset", ["book", "xmark", "protein"])
    def test_generate_each_dataset(self, dataset, tmp_path):
        out = tmp_path / f"{dataset}.xml"
        args = ["generate", dataset, "-o", str(out)]
        if dataset == "xmark":
            args += ["--scale", "0.25"]
        else:
            args += ["--records", "5"]
        assert datasets_main(args) == 0
        assert out.stat().st_size > 0

    def test_seed_override_changes_content(self, tmp_path):
        a = tmp_path / "a.xml"
        b = tmp_path / "b.xml"
        datasets_main(["generate", "book", "--records", "3", "--seed", "1", "-o", str(a)])
        datasets_main(["generate", "book", "--records", "3", "--seed", "2", "-o", str(b)])
        assert a.read_text() != b.read_text()

    def test_stats_subcommand(self, tmp_path, capsys):
        out = tmp_path / "p.xml"
        datasets_main(["generate", "protein", "--records", "4", "-o", str(out)])
        capsys.readouterr()
        assert datasets_main(["stats", str(out)]) == 0
        assert "recursive=no" in capsys.readouterr().out

    def test_missing_file_errors(self, capsys):
        assert datasets_main(["stats", "/nope/missing.xml"]) == 2
        assert "repro.datasets:" in capsys.readouterr().err
