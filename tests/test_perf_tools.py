"""Smoke tests: the perf façade, the profiler CLI, the hotpath benchmark."""

from __future__ import annotations

import json

import pytest

from repro.bench.hotpath import chain_corpus, run_benchmark, write_report
from repro.cli import main as cli_main
from repro.perf import PushPipeline, profile_pipeline
from repro.core.processor import XPathStream


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path / "cache"))


class TestPushPipeline:
    def test_runs_are_independent(self, book_catalog_xml):
        pipeline = PushPipeline("//book//title")
        first = pipeline.run(book_catalog_xml)
        second = pipeline.run(book_catalog_xml)
        assert first == second == XPathStream("//book//title").evaluate(
            book_catalog_xml
        )

    def test_on_match_mode(self, book_catalog_xml):
        seen = []
        pipeline = PushPipeline("//title", on_match=seen.append)
        assert pipeline.run(book_catalog_xml) == []
        assert seen == XPathStream("//title").evaluate(book_catalog_xml)

    def test_engine_name(self):
        assert PushPipeline("//a//b").engine_name == "pathm"


class TestProfilePipeline:
    def test_both_pipelines_profile_and_agree(self, book_catalog_xml):
        push_table, push_ids = profile_pipeline(
            "//book//title", book_catalog_xml, "push", top=5
        )
        pull_table, pull_ids = profile_pipeline(
            "//book//title", book_catalog_xml, "pull", top=5
        )
        assert push_ids == pull_ids
        assert "function calls" in push_table and "function calls" in pull_table

    def test_bad_pipeline_rejected(self):
        with pytest.raises(ValueError, match="pipeline"):
            profile_pipeline("//a", "<a/>", "warp")

    def test_cli_subcommand(self, tmp_path, capsys):
        path = tmp_path / "doc.xml"
        path.write_text("<r><a><b/></a></r>", encoding="utf-8")
        assert cli_main(["profile", "//a/b", str(path), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "1 solutions via the push pipeline" in out

    def test_cli_bad_query_is_a_clean_error(self, tmp_path, capsys):
        path = tmp_path / "doc.xml"
        path.write_text("<r/>", encoding="utf-8")
        assert cli_main(["profile", "//a[", str(path)]) == 2
        assert "twigm:" in capsys.readouterr().err


class TestHotpathBenchmark:
    def test_quick_run_shape_and_gate(self, tmp_path):
        payload = run_benchmark(profile="tiny", repeats=1)
        assert set(payload["corpora"]) == {"xmark", "chain"}
        for corpus in payload["corpora"].values():
            assert corpus["bytes"] > 0 and corpus["events"] > 0
            assert corpus["tokenizer"]["speedup"] is not None
            for row in corpus["queries"].values():
                for config in ("pull", "push"):
                    assert row[config]["seconds"] > 0
                    assert row[config]["mb_per_s"] > 0
                    assert row[config]["events_per_s"] > 0
        summary = payload["summary"]
        assert summary["xmark_min_push_vs_pull"] is not None
        report = tmp_path / "BENCH_core.json"
        write_report(payload, str(report))
        assert json.loads(report.read_text())["benchmark"] == "hotpath"

    def test_chain_corpus_cached_and_well_formed(self):
        corpus = chain_corpus("tiny")
        assert corpus.path.exists()
        ids = XPathStream("//a//b").evaluate(str(corpus.path))
        assert ids  # deep recursion produces matches
        assert corpus.path == chain_corpus("tiny").path  # cached
