"""Differential testing: every engine agrees with the oracle.

The oracle is the navigational DOM evaluator.  For each (query, document)
pair, every engine that supports the query must return the same solution
*set* (emission order legitimately differs across engines).
"""

import pytest

from repro.baselines.enumerative import EnumerativeDomEngine
from repro.baselines.explicit import ExplicitMatchEngine
from repro.baselines.lazydfa import LazyDfaEngine
from repro.baselines.navigational import NavigationalDomEngine
from repro.bench.systems import TwigmEngine
from repro.core.processor import XPathStream
from repro.stream.tokenizer import parse_string
from tests.conftest import chain_xml

ORACLE = NavigationalDomEngine()

ENGINES = [
    TwigmEngine(),
    LazyDfaEngine(),
    ExplicitMatchEngine(),
    EnumerativeDomEngine(),
]

DOCUMENTS = [
    "<a/>",
    "<a><b/></a>",
    "<a><b/><b/><c/></a>",
    "<a><b><c/></b><b/><c><b><c/></b></c></a>",
    "<a><a><a><b/></a><b/></a></a>",
    "<r><a><d/><b><e/><c/></b></a><a><b><c/></b></a></r>",
    chain_xml(4),
    chain_xml(3, with_predicates=False),
    "<r><x p='1'><y>10</y><z/></x><x><y>20</y><z/></x><x p='2' q='3'><z/></x></r>",
    "<a>text<b>more<c>deep</c></b>tail</a>",
    "<a><b><a><b><a><b/></a></b></a></b></a>",
]

QUERIES = [
    "//a",
    "/a",
    "/a/b",
    "//b",
    "//a//b",
    "//a/b//c",
    "//a//b//c",
    "//*",
    "//a/*",
    "/*/b",
    "//a/*/c",
    "/a//c",
    "//b/c",
    "//a[b]",
    "//a[b]/c",
    "//a[d]//c",
    "//a[d]//b[e]//c",
    "//a[b][c]",
    "//a[b[c]]",
    "//a[.//c]/b",
    "//x[@p]/z",
    "//x[@p = '2']/z",
    "//x[y = 10]/z",
    "//x[y < 15]/z",
    "//x[y != 10]/z",
    "//b[. = 'moredeep']",
    "//a[text() = 'texttail']/b",
    "//*[@p][@q]",
    "//a[b]//*",
]


@pytest.mark.parametrize("xml", DOCUMENTS, ids=range(len(DOCUMENTS)))
@pytest.mark.parametrize("query", QUERIES)
def test_engines_agree_with_oracle(query, xml):
    events = list(parse_string(xml))
    expected = sorted(ORACLE.run(query, iter(events)))
    for engine in ENGINES:
        if not engine.supports(query):
            continue
        actual = sorted(engine.run(query, iter(events)))
        assert actual == expected, f"{engine.name} on {query!r} over {xml!r}"


@pytest.mark.parametrize("query", QUERIES)
def test_dispatched_processor_agrees_with_oracle(query):
    for xml in DOCUMENTS:
        events = list(parse_string(xml))
        expected = sorted(ORACLE.run(query, iter(events)))
        actual = sorted(XPathStream(query).evaluate(iter(events)))
        assert actual == expected, f"auto-dispatch on {query!r} over {xml!r}"
