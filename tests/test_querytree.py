"""Tests for query-tree compilation (repro.xpath.querytree)."""

import pytest

from repro.errors import UnsupportedQueryError, XPathSyntaxError
from repro.xpath.querytree import (
    CHILD_EDGE,
    DESCENDANT_EDGE,
    AttributeTest,
    ValueTest,
    compile_query,
)


class TestTrunkStructure:
    def test_chain(self):
        tree = compile_query("/a/b/c")
        assert tree.root.name == "a"
        assert tree.root.axis == CHILD_EDGE
        b = tree.root.children[0]
        assert (b.name, b.axis, b.on_trunk) == ("b", CHILD_EDGE, True)
        c = b.children[0]
        assert c.is_return and tree.return_node is c

    def test_descendant_edges(self):
        tree = compile_query("//a//b")
        assert tree.root.axis == DESCENDANT_EDGE
        assert tree.root.children[0].axis == DESCENDANT_EDGE

    def test_single_step_root_is_return(self):
        tree = compile_query("//a")
        assert tree.root.is_return
        assert tree.return_node is tree.root

    def test_size_counts_all_nodes(self):
        assert compile_query("//a[d]//b[e]//c").size() == 5

    def test_node_ids_unique(self):
        tree = compile_query("//a[b][c/d]//e")
        ids = [node.node_id for node in tree.iter_nodes()]
        assert len(ids) == len(set(ids))

    def test_source_preserved(self):
        assert str(compile_query("//a[b]/c")) == "//a[b]/c"


class TestBranches:
    def test_branch_children_not_on_trunk(self):
        tree = compile_query("//a[d]/b")
        trunk = [child for child in tree.root.children if child.on_trunk]
        branches = [child for child in tree.root.children if not child.on_trunk]
        assert [c.name for c in trunk] == ["b"]
        assert [c.name for c in branches] == ["d"]

    def test_paper_query_q1_shape(self):
        """//a[d]//b[e]//c — figure 1(b)'s tree."""
        tree = compile_query("//a[d]//b[e]//c")
        a = tree.root
        assert a.name == "a" and a.is_branching
        names = sorted(child.name for child in a.children)
        assert names == ["b", "d"]
        b = next(child for child in a.children if child.on_trunk)
        assert sorted(child.name for child in b.children) == ["c", "e"]
        c = next(child for child in b.children if child.on_trunk)
        assert c.is_return and c.is_branching  # return nodes are branching

    def test_nested_predicate_path(self):
        tree = compile_query("//a[b/c]")
        (b,) = [child for child in tree.root.children if not child.on_trunk]
        assert b.name == "b"
        assert b.children[0].name == "c"

    def test_and_becomes_two_branches(self):
        tree = compile_query("//a[b and c]")
        assert sorted(ch.name for ch in tree.root.children) == ["b", "c"]

    def test_predicate_with_descendant_axis(self):
        tree = compile_query("//a[.//e]")
        (e,) = tree.root.children
        assert e.axis == DESCENDANT_EDGE


class TestValueAndAttributeTests:
    def test_self_value_test(self):
        tree = compile_query("//a[. = 'x']")
        assert tree.root.value_tests == [ValueTest("=", "x")]

    def test_text_value_test(self):
        tree = compile_query("//a[text() = 'x']")
        assert tree.root.value_tests == [ValueTest("=", "x")]

    def test_child_value_test_lands_on_leaf(self):
        tree = compile_query("//book[price < 30]")
        (price,) = tree.root.children
        assert price.name == "price"
        assert price.value_tests == [ValueTest("<", 30.0)]

    def test_attribute_existence(self):
        tree = compile_query("//a[@id]")
        assert tree.root.attribute_tests == [AttributeTest("id")]
        assert not tree.root.children

    def test_attribute_value(self):
        tree = compile_query("//a[@id = '7']")
        (test,) = tree.root.attribute_tests
        assert test.name == "id"
        assert test.value_test == ValueTest("=", "7")

    def test_attribute_at_end_of_predicate_path(self):
        tree = compile_query("//a[b/@id]")
        (b,) = tree.root.children
        assert b.attribute_tests == [AttributeTest("id")]


class TestValueTestSemantics:
    def test_string_equality(self):
        assert ValueTest("=", "x").evaluate("x")
        assert not ValueTest("=", "x").evaluate("y")

    def test_string_inequality(self):
        assert ValueTest("!=", "x").evaluate("y")

    def test_numeric_comparisons(self):
        assert ValueTest("<", 30.0).evaluate("25")
        assert not ValueTest("<", 30.0).evaluate("35")
        assert ValueTest(">=", 10.0).evaluate(" 10 ")

    def test_numeric_against_non_numeric_data_fails(self):
        assert not ValueTest("<", 30.0).evaluate("cheap")

    def test_ordered_comparison_with_string_literal_coerces(self):
        assert ValueTest("<", "30").evaluate("25")
        assert not ValueTest("<", "30").evaluate("banana")

    def test_attribute_test_semantics(self):
        test = AttributeTest("id", ValueTest("=", "7"))
        assert test.evaluate({"id": "7"})
        assert not test.evaluate({"id": "8"})
        assert not test.evaluate({})
        assert AttributeTest("id").evaluate({"id": "anything"})

    def test_str_forms(self):
        assert str(ValueTest("<", 30.0)) == "< 30"
        assert str(AttributeTest("id", ValueTest("=", "7"))) == "@id = '7'"


class TestFragmentClassification:
    @pytest.mark.parametrize(
        "query, fragment",
        [
            ("//a//b", "XP{/,//,*}"),
            ("/a/b/c", "XP{/,//,*}"),
            ("//a/*/b", "XP{/,//,*}"),
            ("/a[b]/c", "XP{/,[]}"),
            ("/a[b][c]/d", "XP{/,[]}"),
            ("/a[@id]/b", "XP{/,[]}"),
            ("//a[b]", "XP{/,//,*,[]}"),
            ("/a[b]//c", "XP{/,//,*,[]}"),
            ("/a[*]/b", "XP{/,//,*,[]}"),
            ("/a[. = 'x']/b", "XP{/,[]}"),
        ],
    )
    def test_fragment(self, query, fragment):
        assert compile_query(query).fragment() == fragment

    def test_has_branches(self):
        assert compile_query("//a[b]").has_branches()
        assert compile_query("//a[@x]").has_branches()
        assert compile_query("//a[. = '1']").has_branches()
        assert not compile_query("//a//b").has_branches()

    def test_has_descendant_axis(self):
        assert compile_query("//a").has_descendant_axis()
        assert compile_query("/a[.//b]").has_descendant_axis()
        assert not compile_query("/a/b").has_descendant_axis()

    def test_has_wildcard(self):
        assert compile_query("/a/*").has_wildcard()
        assert compile_query("/a[*/b]").has_wildcard()
        assert not compile_query("/a/b").has_wildcard()


class TestCompileErrors:
    def test_syntax_error_propagates(self):
        with pytest.raises(XPathSyntaxError):
            compile_query("//a[")

    def test_attribute_result_unsupported(self):
        with pytest.raises(XPathSyntaxError):
            compile_query("//a/@id")

    def test_accepts_precompiled_ast(self):
        from repro.xpath.parser import parse_xpath

        tree = compile_query(parse_xpath("//a/b"))
        assert tree.root.name == "a"
