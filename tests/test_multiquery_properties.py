"""Property-based tests: multi-query and filtering ≡ individual runs."""

import pytest
from hypothesis import given, settings, strategies as st

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

from repro.core.filtering import FilterSet
from repro.core.multiquery import MultiQueryStream
from repro.core.processor import XPathStream
from repro.stream.tokenizer import parse_string
from tests.test_equivalence_properties import xml_trees, xpath_queries


@settings(max_examples=100, deadline=None)
@given(
    xml=xml_trees(),
    queries=st.lists(xpath_queries(), min_size=1, max_size=4, unique=True),
)
def test_multiquery_equals_individual_runs(xml, queries):
    named = {f"q{i}": query for i, query in enumerate(queries)}
    events = list(parse_string(xml))
    combined = MultiQueryStream(named).evaluate(iter(events))
    for name, query in named.items():
        alone = XPathStream(query).evaluate(iter(events))
        assert sorted(combined[name]) == sorted(alone), (query, xml)


@settings(max_examples=100, deadline=None)
@given(
    xml=xml_trees(),
    queries=st.lists(xpath_queries(), min_size=1, max_size=4, unique=True),
)
def test_filterset_equals_individual_runs(xml, queries):
    named = {f"q{i}": query for i, query in enumerate(queries)}
    events = list(parse_string(xml))
    combined = FilterSet(named).evaluate(iter(events))
    for name, query in named.items():
        alone = XPathStream(query).evaluate(iter(events))
        assert sorted(combined[name]) == sorted(alone), (query, xml)
