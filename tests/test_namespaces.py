"""Tests for XML namespace support (repro.stream.namespaces)."""

import pytest

from repro.core.processor import XPathStream, evaluate
from repro.errors import XmlSyntaxError, XPathSyntaxError
from repro.stream.events import StartElement
from repro.stream.namespaces import (
    XML_NAMESPACE,
    clark,
    resolve_namespaces,
    split_clark,
    translate_name,
)
from repro.stream.tokenizer import parse_string
from repro.xpath.querytree import compile_query

BOOKS = "http://example.org/books"
META = "http://example.org/meta"

XML = (
    f"<b:catalog xmlns:b='{BOOKS}' xmlns:m='{META}'>"
    "<b:book m:lang='en'>"
    "<b:title>One</b:title>"
    "<plain>raw</plain>"
    "</b:book>"
    "</b:catalog>"
)


def resolved(xml):
    return list(resolve_namespaces(parse_string(xml)))


class TestClarkNames:
    def test_build_and_split(self):
        name = clark("http://x", "a")
        assert name == "{http://x}a"
        assert split_clark(name) == ("http://x", "a")

    def test_bare_names(self):
        assert clark(None, "a") == "a"
        assert split_clark("a") == (None, "a")

    def test_malformed(self):
        with pytest.raises(ValueError):
            split_clark("{unclosed")


class TestResolution:
    def test_element_names_resolved(self):
        tags = [e.tag for e in resolved(XML) if isinstance(e, StartElement)]
        assert tags[0] == f"{{{BOOKS}}}catalog"
        assert tags[1] == f"{{{BOOKS}}}book"
        assert tags[3] == "plain"  # no default namespace declared

    def test_end_tags_resolved_consistently(self):
        events = resolved(XML)
        opens = [e.tag for e in events if isinstance(e, StartElement)]
        closes = [e.tag for e in events if type(e).__name__ == "EndElement"]
        assert sorted(opens) == sorted(closes)

    def test_xmlns_attributes_dropped(self):
        (root, *_rest) = resolved(XML)
        assert root.attributes == {}

    def test_prefixed_attribute_resolved(self):
        book = resolved(XML)[1]
        assert book.attributes == {f"{{{META}}}lang": "en"}

    def test_unprefixed_attributes_stay_bare(self):
        events = resolved("<a xmlns='http://d' id='1'><b k='2'/></a>")
        assert events[0].attributes == {"id": "1"}
        assert events[1].attributes == {"k": "2"}

    def test_default_namespace_applies_to_elements(self):
        events = resolved("<a xmlns='http://d'><b/></a>")
        assert events[0].tag == "{http://d}a"
        assert events[1].tag == "{http://d}b"

    def test_default_namespace_undeclared_by_empty(self):
        events = resolved("<a xmlns='http://d'><b xmlns=''><c/></b></a>")
        assert events[1].tag == "b"
        assert events[2].tag == "c"

    def test_scoping_restores_outer_binding(self):
        xml = "<p:a xmlns:p='http://one'><p:b xmlns:p='http://two'/><p:c/></p:a>"
        events = resolved(xml)
        assert events[0].tag == "{http://one}a"
        assert events[1].tag == "{http://two}b"
        # after </p:b>, p reverts to http://one
        tags = [e.tag for e in events if isinstance(e, StartElement)]
        assert tags[2] == "{http://one}c"

    def test_xml_prefix_is_builtin(self):
        events = resolved("<a xml:lang='de'/>")
        assert events[0].attributes == {f"{{{XML_NAMESPACE}}}lang": "de"}

    def test_undeclared_prefix_rejected(self):
        with pytest.raises(XmlSyntaxError, match="undeclared"):
            resolved("<q:a/>")

    def test_undeclared_attribute_prefix_rejected(self):
        with pytest.raises(XmlSyntaxError, match="undeclared"):
            resolved("<a q:k='1'/>")

    def test_characters_pass_through(self):
        events = resolved("<a xmlns='http://d'>text</a>")
        assert events[1].text == "text"


class TestNamespaceQueries:
    def test_prefixed_query(self):
        query = compile_query("//b:book/b:title", namespaces={"b": BOOKS})
        events = resolved(XML)
        assert XPathStream(query).evaluate(iter(events)) == [3]

    def test_unprefixed_test_matches_no_namespace_only(self):
        query = compile_query("//plain")
        assert XPathStream(query).evaluate(iter(resolved(XML))) == [4]
        # 'title' without binding does not match {BOOKS}title
        assert XPathStream(compile_query("//title")).evaluate(iter(resolved(XML))) == []

    def test_prefixed_attribute_predicate(self):
        query = compile_query(
            "//b:book[@m:lang = 'en']/b:title",
            namespaces={"b": BOOKS, "m": META},
        )
        assert XPathStream(query).evaluate(iter(resolved(XML))) == [3]

    def test_wildcard_crosses_namespaces(self):
        query = compile_query("//b:book/*", namespaces={"b": BOOKS})
        assert XPathStream(query).evaluate(iter(resolved(XML))) == [3, 4]

    def test_unbound_prefix_rejected_at_compile(self):
        # A prefix is only checked once a namespaces mapping is given;
        # without one, prefixes are opaque (backwards compatible).
        with pytest.raises(XPathSyntaxError, match="not bound"):
            compile_query("//p:a", namespaces={"q": "http://x"})
        compile_query("//p:a")  # opaque-mode: fine

    def test_translate_name(self):
        assert translate_name("p:x", {"p": "http://u"}) == "{http://u}x"
        assert translate_name("x", None) == "x"
        assert translate_name("*", None) == "*"

    def test_without_resolution_prefixes_are_opaque(self):
        """Backwards compatibility: no resolve pass, prefixed tags match
        literally (the paper's behaviour)."""
        assert evaluate("//b:title", XML) == [3]


class TestExpatNamespaceCrossCheck:
    """Expat's native namespace handling is an independent oracle for
    our resolver: both must produce identical Clark-name streams."""

    DOCUMENTS = [
        XML,
        "<a xmlns='http://d'><b/><c xmlns=''/></a>",
        "<p:a xmlns:p='http://one'><p:b xmlns:p='http://two' p:k='v'/></p:a>",
        "<a><b xmlns='http://late'>text</b><b/></a>",
        "<a xml:lang='en'/>",
    ]

    @pytest.mark.parametrize("xml", DOCUMENTS, ids=range(len(DOCUMENTS)))
    def test_resolver_agrees_with_expat(self, xml):
        from repro.stream.expat_source import expat_parse_string

        ours = resolved(xml)
        expats = list(expat_parse_string(xml, namespace_aware=True))
        assert ours == expats

    def test_resolver_agrees_with_expat_random_documents(self):
        from hypothesis import given, settings, strategies as st

        from repro.stream.expat_source import expat_parse_string

        uris = ("http://one", "http://two", "")
        prefixes = ("", "p", "q")

        @st.composite
        def ns_trees(draw, depth=0, bound=frozenset(["p0"])):
            tag_prefix = draw(st.sampled_from(prefixes))
            declarations = []
            now_bound = set(bound)
            for prefix in prefixes:
                if draw(st.integers(0, 3)) == 0:
                    uri = draw(st.sampled_from(uris))
                    if prefix == "":
                        declarations.append(f" xmlns='{uri}'")
                        now_bound.add("")
                    elif uri:  # prefixed xmlns cannot be empty
                        declarations.append(f" xmlns:{prefix}='{uri}'")
                        now_bound.add(prefix)
            if tag_prefix and tag_prefix not in now_bound:
                tag_prefix = ""
            name = f"{tag_prefix}:e" if tag_prefix else "e"
            if depth >= 3:
                children = []
            else:
                children = draw(
                    st.lists(ns_trees(depth=depth + 1, bound=frozenset(now_bound)),
                             max_size=2)
                )
            return f"<{name}{''.join(declarations)}>{''.join(children)}</{name}>"

        @settings(max_examples=150, deadline=None)
        @given(xml=ns_trees())
        def check(xml):
            assert resolved(xml) == list(
                expat_parse_string(xml, namespace_aware=True)
            )

        check()
