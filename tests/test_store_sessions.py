"""StoreSessionStore: the framed, compacting session-checkpoint log.

Covers the SessionStore-compatible surface, crash recovery over torn
``sessions.log`` tails, compaction triggers and atomicity, the shared
``sync_policy`` spelling on both stores, and the ``ServeConfig``
selection of the store-backed log in the server.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.serve.framing import encode_frame
from repro.serve.session import ServeConfig, SessionStore
from repro.store.log import REC_SESSION, REC_SESSION_TOMB
from repro.store.sessions import SESSIONS_LOG_NAME, StoreSessionStore
from repro.store.sync import SyncPolicy


def make_store(tmp_path, **kwargs) -> StoreSessionStore:
    kwargs.setdefault("sync", "none")
    return StoreSessionStore(300.0, str(tmp_path / "sessions"), **kwargs)


class TestSurface:
    def test_put_get_delete_len(self, tmp_path):
        store = make_store(tmp_path)
        assert store.get("t1") is None
        store.put("t1", {"offset": 5})
        store.put("t2", {"offset": 9})
        assert store.get("t1") == {"offset": 5}
        assert len(store) == 2
        store.delete("t1")
        assert store.get("t1") is None
        assert len(store) == 1
        store.delete("missing")  # no-op, no tombstone spam
        store.close()

    def test_put_overwrites(self, tmp_path):
        store = make_store(tmp_path)
        store.put("t", {"v": 1})
        store.put("t", {"v": 2})
        assert store.get("t") == {"v": 2}
        assert len(store) == 1
        store.close()

    def test_sweep_expires_by_ttl(self, tmp_path):
        store = make_store(tmp_path)
        store.put("old", {"v": 1}, now=100.0)
        store.put("new", {"v": 2}, now=500.0)
        removed = store.sweep(now=450.0)  # ttl=300: 'old' is stale
        assert removed == 1
        assert store.get("old") is None
        assert store.get("new") == {"v": 2}
        store.close()

    def test_matches_session_store_semantics(self, tmp_path):
        """Differential: both stores agree on every operation's outcome."""
        framed = make_store(tmp_path)
        spool = SessionStore(300.0, str(tmp_path / "spool"))
        ops = [
            ("put", "a", {"x": 1}), ("put", "b", {"x": 2}),
            ("put", "a", {"x": 3}), ("delete", "b", None),
            ("put", "c", {"deep": {"nested": [1, 2]}}),
        ]
        for op, token, blob in ops:
            for store in (framed, spool):
                getattr(store, op)(*([token, blob] if op == "put" else [token]))
        for token in ("a", "b", "c"):
            assert framed.get(token) == spool.get(token)
        assert len(framed) == len(spool)
        framed.close()


class TestRecovery:
    def test_survives_reopen(self, tmp_path):
        store = make_store(tmp_path)
        store.put("t1", {"offset": 5})
        store.put("t2", {"offset": 9})
        store.delete("t2")
        store.close()
        revived = make_store(tmp_path)
        assert revived.get("t1") == {"offset": 5}
        assert revived.get("t2") is None
        assert len(revived) == 1
        revived.close()

    def test_torn_tail_loses_only_last_record(self, tmp_path):
        store = make_store(tmp_path)
        store.put("keep", {"v": 1})
        store.put("torn", {"v": 2})
        store.close()
        path = tmp_path / "sessions" / SESSIONS_LOG_NAME
        path.write_bytes(path.read_bytes()[:-3])  # SIGKILL mid-append
        revived = make_store(tmp_path)
        assert revived.get("keep") == {"v": 1}
        assert revived.get("torn") is None
        # The torn bytes were truncated; new appends extend a clean log.
        revived.put("after", {"v": 3})
        revived.close()
        final = make_store(tmp_path)
        assert final.get("keep") == {"v": 1}
        assert final.get("after") == {"v": 3}
        final.close()

    def test_corrupt_middle_truncates_from_there(self, tmp_path):
        store = make_store(tmp_path)
        store.put("first", {"v": 1})
        size_after_first = os.path.getsize(tmp_path / "sessions" / SESSIONS_LOG_NAME)
        store.put("second", {"v": 2})
        store.put("third", {"v": 3})
        store.close()
        path = tmp_path / "sessions" / SESSIONS_LOG_NAME
        data = bytearray(path.read_bytes())
        data[size_after_first + 11] ^= 0xFF  # flip a bit inside record 2
        path.write_bytes(bytes(data))
        revived = make_store(tmp_path)
        assert revived.get("first") == {"v": 1}
        assert revived.get("second") is None
        assert revived.get("third") is None  # after the corruption: untrusted
        revived.close()

    def test_garbage_payload_truncated(self, tmp_path):
        store = make_store(tmp_path)
        store.put("ok", {"v": 1})
        store.close()
        path = tmp_path / "sessions" / SESSIONS_LOG_NAME
        with open(path, "ab") as handle:
            # CRC-valid frame whose JSON payload has the wrong shape.
            handle.write(encode_frame(REC_SESSION, b'{"nope": true}'))
        revived = make_store(tmp_path)
        assert revived.get("ok") == {"v": 1}
        assert len(revived) == 1
        revived.close()

    def test_tombstone_round_trip(self, tmp_path):
        store = make_store(tmp_path)
        store.put("t", {"v": 1})
        store.delete("t")
        store.close()
        data = (tmp_path / "sessions" / SESSIONS_LOG_NAME).read_bytes()
        assert data.count(bytes([REC_SESSION_TOMB])) >= 1
        revived = make_store(tmp_path)
        assert len(revived) == 0
        revived.close()


class TestCompaction:
    def test_triggers_on_dead_ratio(self, tmp_path):
        store = make_store(tmp_path)
        # 100 overwrites of one token: 99 dead records crosses the 0.5
        # ratio once past MIN_COMPACT_RECORDS.
        for i in range(100):
            store.put("t", {"v": i})
        assert store._records < 100  # a compaction fired
        assert store.get("t") == {"v": 99}
        store.close()
        revived = make_store(tmp_path)
        assert revived.get("t") == {"v": 99}
        revived.close()

    def test_small_logs_left_alone(self, tmp_path):
        store = make_store(tmp_path)
        for i in range(10):
            store.put("t", {"v": i})
        assert store._records == 10  # under MIN_COMPACT_RECORDS
        store.close()

    def test_explicit_compact_shrinks_file(self, tmp_path):
        store = make_store(tmp_path, compact_ratio=1.1)  # never auto
        for i in range(200):
            store.put("t", {"v": i})
        path = tmp_path / "sessions" / SESSIONS_LOG_NAME
        before = os.path.getsize(path)
        dropped = store.compact()
        assert dropped == 199
        assert os.path.getsize(path) < before
        assert store.get("t") == {"v": 199}
        store.put("u", {"v": 0})  # appends still work post-swap
        store.close()
        revived = make_store(tmp_path)
        assert revived.get("t") == {"v": 199}
        assert revived.get("u") == {"v": 0}
        revived.close()

    def test_compaction_metric(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        store = make_store(tmp_path, compact_ratio=1.1, metrics=metrics)
        for i in range(100):
            store.put("t", {"v": i})
        store.compact()
        text = metrics.render_prometheus()
        assert "repro_store_session_compactions_total 1" in text
        store.close()


class TestSyncPolicy:
    def test_spool_store_fsync_cadence(self, tmp_path, monkeypatch):
        calls = []
        import repro.store.sync as sync_mod

        monkeypatch.setattr(
            sync_mod.os, "fsync", lambda fd: calls.append(fd)
        )
        store = SessionStore(300.0, str(tmp_path / "spool"), sync="interval:3")
        for i in range(9):
            store.put(f"t{i}", {"v": i})
        assert len(calls) == 3
        calls.clear()
        quiet = SessionStore(300.0, str(tmp_path / "spool2"), sync="none")
        quiet.put("t", {"v": 1})
        assert calls == []

    def test_framed_store_fsync_cadence(self, tmp_path, monkeypatch):
        calls = []
        import repro.store.sync as sync_mod

        monkeypatch.setattr(sync_mod.os, "fsync", lambda fd: calls.append(fd))
        store = make_store(tmp_path, sync="interval:4")
        for i in range(8):
            store.put(f"t{i}", {"v": i})
        assert len(calls) == 2
        store.close()

    def test_policy_coercion_shared_spelling(self):
        for spelling in ("always", "interval", "interval:7", "none"):
            policy = SyncPolicy.coerce(spelling)
            assert policy.to_str() in (spelling, "interval:64")
        assert SessionStore(1.0).sync.kind == "always"  # None → safe default


class TestServeIntegration:
    def test_config_selects_store_backed_log(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry
        from repro.serve.server import SessionServer

        config = ServeConfig(
            store_dir=str(tmp_path / "sessions"), sync_policy="none"
        )
        worker = SessionServer(config, metrics=MetricsRegistry())
        assert isinstance(worker.store, StoreSessionStore)
        worker.store.put("t", {"v": 1})
        assert (tmp_path / "sessions" / SESSIONS_LOG_NAME).exists()
        worker.store.close()

    def test_config_defaults_to_spool(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry
        from repro.serve.server import SessionServer

        config = ServeConfig(spool_dir=str(tmp_path / "spool"))
        worker = SessionServer(config, metrics=MetricsRegistry())
        assert isinstance(worker.store, SessionStore)
        assert not isinstance(worker.store, StoreSessionStore)

    def test_session_checkpoint_resume_through_framed_store(self, tmp_path):
        """End-to-end: checkpoint a real session into the framed log,
        'crash' (new store instance), resume, results identical."""
        from repro.serve.session import Session

        text = "<catalog>" + "".join(
            f"<book><title>T{i}</title></book>" for i in range(8)
        ) + "</catalog>"
        config = ServeConfig(checkpoint_interval=1)
        results: list = []
        session = Session.open(
            {"queries": {"q": "//book/title"}},
            config,
            lambda name, node_id, seq: results.append((name, node_id, seq)),
        )
        half = len(text) // 2
        session.feed(0, text[:half])
        store = make_store(tmp_path)
        store.put(session.token, session.checkpoint())
        store.close()

        revived_store = make_store(tmp_path)  # fresh process
        blob = revived_store.get(session.token)
        resumed: list = []
        session2 = Session.resume(
            blob, config,
            lambda name, node_id, seq: resumed.append((name, node_id, seq)),
            last_result_seq=results[-1][2] if results else 0,
        )
        session2.feed(session2.input_offset, text[session2.input_offset:])
        session2.finish()

        reference: list = []
        whole = Session.open(
            {"queries": {"q": "//book/title"}},
            config,
            lambda name, node_id, seq: reference.append((name, node_id, seq)),
        )
        whole.feed(0, text)
        whole.finish()
        assert results + resumed == reference
        revived_store.close()


class TestSessionsLogFormat:
    def test_records_are_compact_json(self, tmp_path):
        store = make_store(tmp_path)
        store.put("tok", {"a": 1})
        store.close()
        data = (tmp_path / "sessions" / SESSIONS_LOG_NAME).read_bytes()
        payload = data[9:]  # one frame: 9-byte header then payload
        record = json.loads(payload)
        assert record["token"] == "tok"
        assert json.loads(record["blob"]) == {"a": 1}
