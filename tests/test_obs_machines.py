"""repro.obs.machines: counter semantics, parity, and checkpointing."""

from __future__ import annotations

import pytest

from repro.core.branchm import BranchM
from repro.core.instrument import InstrumentedTwigM
from repro.core.pathm import PathM
from repro.core.processor import XPathStream
from repro.core.results import CollectingSink
from repro.core.twigm import TwigM
from repro.obs.machines import (
    OBS_ENGINES_BY_NAME,
    ObsBranchM,
    ObsPathM,
    ObsTwigM,
    OperationCounts,
)
from repro.obs.metrics import MetricsRegistry
from repro.stream.tokenizer import parse_string

CASES = [
    ("//a//b", "<a><b/><c><b/></c></a>"),
    ("/a/*/c", "<a><b><c/></b><d><c/></d></a>"),
    ("//a[b]", "<a><b/></a><!---->" ),
    ("//item[quantity < 2]/name",
     "<site><item><quantity>1</quantity><name>x</name></item>"
     "<item><quantity>5</quantity><name>y</name></item></site>"),
]

PAIRS = [(PathM, ObsPathM), (BranchM, ObsBranchM), (TwigM, ObsTwigM)]


def feed(engine, xml):
    engine.feed(parse_string(xml))


@pytest.mark.parametrize("plain_class,obs_class", PAIRS)
@pytest.mark.parametrize("query,xml", CASES)
def test_obs_engines_match_plain_results(plain_class, obs_class, query, xml):
    try:
        plain_sink = CollectingSink()
        plain = plain_class(query, sink=plain_sink)
    except Exception as exc:  # fragment unsupported by this machine
        pytest.skip(f"{plain_class.__name__}: {exc}")
    feed(plain, xml)
    obs_sink = CollectingSink()
    observed = obs_class(query, sink=obs_sink)
    feed(observed, xml)
    assert list(obs_sink.results) == list(plain_sink.results)
    assert observed.counts.events > 0


def test_event_counting_matches_element_events():
    engine = ObsTwigM("//a[b]")
    feed(engine, "<a><b/></a>")
    # 2 starts + 2 ends; characters are not element events
    assert engine.counts.events == 4
    assert engine.counts.pushes == engine.counts.pops == 2


def test_peak_entries_high_water():
    engine = ObsTwigM("//a")
    feed(engine, "<a><a><a/></a></a>")
    # one live stack entry per open matching element at the deepest point
    assert engine.counts.peak_entries == 3
    assert engine.live_entries == 0


def test_total_work_is_sum_of_operations():
    counts = OperationCounts(pushes=1, pops=2, edge_checks=3, flag_sets=4,
                             uploads=5)
    assert counts.total_work() == 15


def test_operation_counts_round_trip():
    counts = OperationCounts(events=9, pushes=2, emitted=1)
    loaded = OperationCounts()
    loaded.load(counts.as_dict())
    assert loaded == counts


def test_machine_name_shared_with_plain():
    for plain_class, obs_class in PAIRS:
        assert obs_class.machine_name == plain_class.machine_name
    assert InstrumentedTwigM.machine_name == "twigm"
    assert OBS_ENGINES_BY_NAME["twigm"] is ObsTwigM


def test_registry_publication():
    registry = MetricsRegistry()
    sink = CollectingSink()
    engine = ObsTwigM("//a[b]", sink=sink, metrics=registry)
    feed(engine, "<a><b/></a>")
    snap = registry.snapshot()
    values = {
        tuple(sorted(v["labels"].items())): v["value"]
        for v in snap["repro_machine_events_total"]["values"]
    }
    assert values[(("engine", "twigm"),)] == 4


def test_counts_survive_snapshot_restore():
    stream = XPathStream("//a[b]", metrics=MetricsRegistry())
    stream.feed_text("<a><b/>")
    state = stream.snapshot()
    resumed = XPathStream.restore(state, metrics=MetricsRegistry())
    resumed.feed_text("</a>")
    resumed.close()
    uninterrupted = XPathStream("//a[b]", metrics=MetricsRegistry())
    uninterrupted.feed_text("<a><b/></a>")
    uninterrupted.close()
    assert resumed.engine.counts == uninterrupted.engine.counts
    assert list(resumed.results) == list(uninterrupted.results)


def test_plain_snapshot_restores_onto_obs_engine():
    plain = XPathStream("//a[b]")
    plain.feed_text("<a><b/>")
    state = plain.snapshot()
    resumed = XPathStream.restore(state, metrics=MetricsRegistry())
    assert type(resumed.engine) is ObsTwigM
    # pre-observability snapshot: counters restart, live state recomputed
    assert resumed.engine.counts.events == 0
    assert resumed.engine.live_entries > 0
    resumed.feed_text("</a>")
    resumed.close()
    assert list(resumed.results) == [1]


def test_obs_snapshot_restores_onto_plain_engine():
    observed = XPathStream("//a[b]", metrics=MetricsRegistry())
    observed.feed_text("<a><b/>")
    state = observed.snapshot()
    resumed = XPathStream.restore(state)
    assert type(resumed.engine) is TwigM
    resumed.feed_text("</a>")
    resumed.close()
    assert list(resumed.results) == [1]


def test_instrumented_twigm_keeps_historical_constructor():
    sink = CollectingSink()
    engine = InstrumentedTwigM("//a[b]", sink)
    feed(engine, "<a><b/></a>")
    assert engine.counts.events == 4
    assert list(sink.results) == [1]
