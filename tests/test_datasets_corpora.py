"""Tests for the three corpus generators (book / xmark / protein) and
dataset statistics (the figure 5 properties the paper relies on)."""

import pytest

from repro.datasets.book import book_events, duplicated_book_events
from repro.datasets.generator import GeneratorConfig
from repro.datasets.protein import protein_events
from repro.datasets.stats import collect_stats
from repro.datasets.xmark import xmark_events
from repro.stream.events import StartElement, validate_events


@pytest.fixture(scope="module")
def book_stats():
    return collect_stats(validate_events(book_events(20)))


@pytest.fixture(scope="module")
def xmark_stats():
    return collect_stats(validate_events(xmark_events(1.0)))


@pytest.fixture(scope="module")
def protein_stats():
    return collect_stats(validate_events(protein_events(60)))


class TestBookCorpus:
    def test_recursive_via_section(self, book_stats):
        """The property the whole evaluation turns on (figure 5)."""
        assert book_stats.recursive
        assert "section" in book_stats.recursive_tags

    def test_depth_within_number_levels(self, book_stats):
        assert book_stats.max_depth <= 20

    def test_expected_vocabulary(self):
        tags = {
            event.tag
            for event in book_events(5)
            if isinstance(event, StartElement)
        }
        assert {"bib", "book", "title", "author", "section"} <= tags

    def test_deterministic(self):
        assert list(book_events(3)) == list(book_events(3))

    def test_book_count(self):
        books = sum(
            1
            for event in book_events(7)
            if isinstance(event, StartElement) and event.tag == "book"
        )
        assert books == 7


class TestDuplicatedBook:
    def test_factor_scales_elements(self):
        base = collect_stats(duplicated_book_events(3, 1))
        tripled = collect_stats(duplicated_book_events(3, 3))
        assert tripled.elements == 3 * base.elements - 2  # shared wrapper

    def test_duplicated_stream_is_valid(self):
        list(validate_events(duplicated_book_events(2, 4)))

    def test_ids_stay_increasing_across_copies(self):
        ids = [
            event.node_id
            for event in duplicated_book_events(2, 3)
            if isinstance(event, StartElement)
        ]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))


class TestXmarkCorpus:
    def test_vocabulary(self):
        tags = {
            event.tag
            for event in xmark_events(0.5)
            if isinstance(event, StartElement)
        }
        assert {"site", "regions", "people", "person", "open_auction",
                "closed_auction", "item", "annotation"} <= tags

    def test_shallow_except_parlist(self, xmark_stats):
        assert xmark_stats.recursive_tags <= {"parlist", "listitem"}

    def test_scale_increases_size(self):
        small = collect_stats(xmark_events(0.5))
        large = collect_stats(xmark_events(2.0))
        assert large.elements > small.elements


class TestProteinCorpus:
    def test_flat_and_non_recursive(self, protein_stats):
        """Figure 5: the protein data is shallow and non-recursive."""
        assert not protein_stats.recursive
        assert protein_stats.max_depth <= 8

    def test_vocabulary(self):
        tags = {
            event.tag
            for event in protein_events(5)
            if isinstance(event, StartElement)
        }
        assert {"ProteinDatabase", "ProteinEntry", "protein", "organism",
                "reference", "refinfo", "sequence"} <= tags

    def test_entry_count(self):
        entries = sum(
            1
            for event in protein_events(9)
            if isinstance(event, StartElement) and event.tag == "ProteinEntry"
        )
        assert entries == 9


class TestDatasetStats:
    def test_known_document(self):
        from repro.stream.tokenizer import parse_string

        stats = collect_stats(parse_string("<a x='1'><a><b>text</b></a></a>"))
        assert stats.elements == 3
        assert stats.attributes == 1
        assert stats.max_depth == 3
        assert stats.distinct_tags == 2
        assert stats.recursive and stats.recursive_tags == {"a"}
        assert stats.text_bytes == 4

    def test_size_matches_serialization(self):
        from repro.stream.tokenizer import parse_string
        from repro.stream.writer import events_to_string

        xml = "<a x='1'><b>t &amp; u</b><c/></a>"
        events = list(parse_string(xml, skip_whitespace=False))
        stats = collect_stats(iter(events))
        serialized = events_to_string(iter(events))
        # collect_stats charges "<tag>...</tag>" for every element; the
        # writer may self-close empties, making it shorter by exactly
        # len("</c>") - 1 per empty element.
        assert stats.size_bytes >= len(serialized)

    def test_row_shape(self):
        from repro.stream.tokenizer import parse_string

        row = collect_stats(parse_string("<a/>")).row("tiny")
        assert row["dataset"] == "tiny"
        assert row["recursive"] == "no"

    def test_size_mb_property(self):
        from repro.stream.tokenizer import parse_string

        stats = collect_stats(parse_string("<a/>"))
        assert stats.size_mb == stats.size_bytes / (1024 * 1024)

    def test_paper_figure5_shape(self, book_stats, xmark_stats, protein_stats):
        """Book recursive, Protein flat — the qualitative figure 5 row."""
        assert book_stats.recursive
        assert not protein_stats.recursive
        assert protein_stats.max_depth < book_stats.max_depth
