"""Smoke tests for the figure drivers at the tiny profile.

These verify the experiment *machinery*; the shape assertions over real
measurements live in benchmarks/ (run with ``pytest benchmarks/
--benchmark-only``).
"""

import pytest

from repro.bench import figures
from repro.bench.corpora import PROFILES, get_corpus, scaled_book_corpus
from repro.bench.systems import ENGINE_NAMES, TwigmEngine, engine_by_name, make_engines


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path / "cache"))


class TestCorpora:
    def test_corpus_cached_on_disk(self):
        corpus = get_corpus("book", "tiny")
        assert corpus.path.exists()
        assert corpus.size_bytes() > 0
        # Second call reuses the file (same mtime).
        mtime = corpus.path.stat().st_mtime_ns
        again = get_corpus("book", "tiny")
        assert again.path.stat().st_mtime_ns == mtime

    def test_corpus_events_stream(self):
        corpus = get_corpus("protein", "tiny")
        events = list(corpus.events())
        assert events[0].tag == "ProteinDatabase"

    def test_profiles_exist(self):
        assert {"tiny", "small", "medium", "large"} <= set(PROFILES)

    def test_scaled_corpus_grows(self):
        one = scaled_book_corpus(1, "tiny")
        three = scaled_book_corpus(3, "tiny")
        assert three.size_bytes() > 2 * one.size_bytes()


class TestSystemsRegistry:
    def test_five_engines(self):
        assert len(make_engines()) == 5
        assert ENGINE_NAMES[0] == "TwigM"

    def test_engine_by_name(self):
        assert engine_by_name("twigm").name == "TwigM"
        assert engine_by_name("XSQ*").name == "XSQ*"
        with pytest.raises(KeyError):
            engine_by_name("nope")

    def test_twigm_engine_supports_everything_parsable(self):
        engine = TwigmEngine()
        assert engine.supports("//a[b][.//c]/*")
        assert not engine.supports("//a[")


class TestFigureDrivers:
    def test_figure5_rows(self):
        rows = figures.figure5("tiny")
        assert len(rows) == 3
        assert rows[0]["recursive"] == "yes"   # Book
        assert rows[2]["recursive"] == "no"    # Protein

    def test_figure6_rows(self):
        rows = figures.figure6()
        assert len(rows) == 30
        assert {row["set"] for row in rows} == {"book", "benchmark", "protein"}

    def test_figure7_grid(self):
        grid = figures.figure7("book", profile="tiny", repeats=1)
        assert grid.row_labels == [s.qid for s in figures.QUERY_SETS["book"]]
        assert grid.column_labels == ENGINE_NAMES
        # XMLTK must be marked unsupported on predicate queries.
        assert not grid.get("Q5", "XMLTK*").supported
        assert grid.get("Q1", "XMLTK*").supported
        # TwigM supports everything.
        assert all(grid.get(q, "TwigM").supported for q in grid.row_labels)

    def test_figure8_grid(self):
        grid = figures.figure8("protein", profile="tiny")
        cell = grid.get("Q1", "TwigM")
        assert cell.supported and cell.memory is not None

    def test_figure9_grids(self):
        grids = figures.figure9(qids=("Q1",), profile="tiny", repeats=1,
                                factors=(1, 2))
        assert set(grids) == {"Q1"}
        assert grids["Q1"].row_labels == ["x1", "x2"]

    def test_figure10_grid(self):
        grid = figures.figure10(profile="tiny", factors=(1, 2))
        assert grid.row_labels == ["x1", "x2"]

    def test_render_figure_dispatch(self):
        assert "Figure 5" in figures.render_figure("5", profile="tiny")
        assert "Figure 6" in figures.render_figure("6")
        with pytest.raises(KeyError):
            figures.render_figure("99")

    def test_render_figure_ablation(self):
        text = figures.render_figure("A", profile="tiny", repeats=1)
        assert "fitted k" in text
        assert "TwigM peak entries" in text

    def test_figures_registry_matches_render(self):
        for figure in figures.FIGURES:
            assert figure in ("5", "6", "7a", "7b", "7c", "8a", "8b", "8c",
                              "9", "10", "A")


class TestXsqRestrictionInGrids:
    def test_xsq_unsupported_on_full_queries(self):
        grid = figures.figure7("book", profile="tiny", repeats=1)
        assert not grid.get("Q9", "XSQ*").supported
        assert not grid.get("Q10", "XSQ*").supported
        assert grid.get("Q5", "XSQ*").supported
