"""Tests for the JSON figure export (repro.bench.export)."""

import json

import pytest

from repro.bench.cli import main as bench_main
from repro.bench.export import cell_record, export_figure, grid_to_records, write_json
from repro.bench.harness import Cell, Grid, MemoryUse, Timing


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path / "cache"))


class TestCellRecords:
    def test_timing_cell(self):
        cell = Cell(supported=True, timing=Timing(0.5, (0.4, 0.5, 0.6), 12))
        record = cell_record("Q1", "TwigM", cell)
        assert record == {
            "row": "Q1", "column": "TwigM", "supported": True,
            "seconds": 0.5, "runs": [0.4, 0.5, 0.6], "results": 12,
        }

    def test_memory_cell(self):
        cell = Cell(supported=True, memory=MemoryUse(2048, 3))
        record = cell_record("Q1", "A", cell)
        assert record["peak_bytes"] == 2048
        assert record["results"] == 3

    def test_unsupported_cell(self):
        assert cell_record("Q1", "A", Cell.unsupported()) == {
            "row": "Q1", "column": "A", "supported": False,
        }

    def test_missing_cell(self):
        assert cell_record("Q1", "A", None)["supported"] is False

    def test_error_cell(self):
        record = cell_record("Q1", "A", Cell(supported=True, error="boom"))
        assert record["error"] == "boom"

    def test_grid_to_records_row_major(self):
        grid = Grid(title="t")
        grid.put("Q1", "A", Cell.unsupported())
        grid.put("Q1", "B", Cell.unsupported())
        grid.put("Q2", "A", Cell.unsupported())
        records = grid_to_records(grid)
        assert [(r["row"], r["column"]) for r in records] == [
            ("Q1", "A"), ("Q1", "B"), ("Q2", "A"), ("Q2", "B"),
        ]


class TestExportFigure:
    def test_figure5(self):
        payload = export_figure("5", profile="tiny", repeats=1)
        assert payload["kind"] == "table"
        assert len(payload["rows"]) == 3

    def test_figure6(self):
        payload = export_figure("6", profile="tiny", repeats=1)
        assert len(payload["rows"]) == 30

    def test_figure7a(self):
        payload = export_figure("7a", profile="tiny", repeats=1)
        assert payload["kind"] == "time"
        assert payload["dataset"] == "book"
        supported = [c for c in payload["cells"] if c["supported"]]
        unsupported = [c for c in payload["cells"] if not c["supported"]]
        assert supported and unsupported  # both kinds present
        assert all("seconds" in c for c in supported)

    def test_unknown_figure(self):
        with pytest.raises(KeyError):
            export_figure("99", profile="tiny", repeats=1)

    def test_write_json_round_trips(self, tmp_path):
        path = tmp_path / "out.json"
        payload = export_figure("6", profile="tiny", repeats=1)
        write_json(str(path), [payload])
        loaded = json.loads(path.read_text())
        assert loaded[0]["figure"] == "6"


class TestCliJsonFlag:
    def test_json_output(self, tmp_path, capsys):
        out = tmp_path / "fig.json"
        code = bench_main(["--figure", "5", "--profile", "tiny", "--json", str(out)])
        assert code == 0
        loaded = json.loads(out.read_text())
        assert loaded[0]["figure"] == "5"
        assert "wrote" in capsys.readouterr().out
