"""Tests for the XPath AST helpers (repro.xpath.ast)."""

import pytest

from repro.xpath.ast import (
    AndPredicate,
    ComparisonPredicate,
    NotPredicate,
    OrPredicate,
    PathPredicate,
    has_descendant_axis,
    has_predicates,
    has_wildcard,
    walk_steps,
)
from repro.xpath.parser import parse_xpath


class TestWalkSteps:
    def test_trunk_only(self):
        steps = walk_steps(parse_xpath("/a/b/c"))
        assert [str(step.test) for step in steps] == ["a", "b", "c"]

    def test_includes_predicate_paths(self):
        steps = walk_steps(parse_xpath("//a[b/c]/d"))
        names = [str(step.test) for step in steps]
        assert names == ["a", "b", "c", "d"]

    def test_includes_nested_and_boolean_predicates(self):
        steps = walk_steps(parse_xpath("//a[b[x] or not(c)]/d"))
        names = sorted(str(step.test) for step in steps)
        assert names == ["a", "b", "c", "d", "x"]


class TestFlags:
    def test_has_predicates(self):
        assert has_predicates(parse_xpath("//a[b]"))
        assert has_predicates(parse_xpath("//a/b[.//c]/d"))
        assert not has_predicates(parse_xpath("//a/b"))

    def test_has_descendant_axis(self):
        assert has_descendant_axis(parse_xpath("//a"))
        assert has_descendant_axis(parse_xpath("/a[.//b]"))
        assert not has_descendant_axis(parse_xpath("/a/b[c]"))

    def test_has_wildcard(self):
        assert has_wildcard(parse_xpath("/a/*"))
        assert has_wildcard(parse_xpath("/a[*/b]"))
        assert not has_wildcard(parse_xpath("/a/b"))


class TestStrForms:
    @pytest.mark.parametrize(
        "query",
        ["/a/b", "//a//b", "//a[b]", "//a[b or c]", "//a[not(b)]",
         "//a[b and c or d]", "//a[@k = '1']/b", "//a[. = 'x']"],
    )
    def test_str_reparses_to_same_ast(self, query):
        first = parse_xpath(query)
        second = parse_xpath(str(first))
        assert str(second) == str(first)

    def test_predicate_str_grouping(self):
        (pred,) = parse_xpath("//a[b and c or d]").steps[0].predicates
        assert isinstance(pred, OrPredicate)
        assert str(pred) == "(b and c) or d"

    def test_not_str(self):
        (pred,) = parse_xpath("//a[not(b)]").steps[0].predicates
        assert isinstance(pred, NotPredicate)
        assert str(pred) == "not(b)"

    def test_comparison_str(self):
        (pred,) = parse_xpath("//a[b < 30]").steps[0].predicates
        assert isinstance(pred, ComparisonPredicate)
        assert str(pred) == "b < 30"
