"""Tests for the Expat-backed event source (repro.stream.expat_source)."""

import pytest

from repro.errors import XmlSyntaxError
from repro.stream.events import Characters, StartElement
from repro.stream.expat_source import (
    ExpatSource,
    expat_parse_chunks,
    expat_parse_file,
    expat_parse_string,
)
from repro.stream.tokenizer import parse_string

DOCUMENTS = [
    "<a/>",
    "<a><b/><c/></a>",
    "<a x='1' y='2'><b z='3'>text</b></a>",
    "<a>x &amp; y &lt;z&gt;</a>",
    "<r><a><a><a>deep</a></a></a></r>",
    "<?xml version='1.0'?><a><!-- c --><b>t</b></a>",
    "<a><![CDATA[<raw>]]></a>",
]


class TestAgreementWithTokenizer:
    @pytest.mark.parametrize("xml", DOCUMENTS)
    def test_same_events_as_pure_python_tokenizer(self, xml):
        ours = list(parse_string(xml))
        expats = list(expat_parse_string(xml))
        assert expats == ours

    def test_whitespace_skipping_matches(self):
        xml = "<a>\n  <b/>  \n</a>"
        assert list(expat_parse_string(xml)) == list(parse_string(xml))

    def test_whitespace_kept_matches(self):
        xml = "<a> <b/> </a>"
        assert list(expat_parse_string(xml, skip_whitespace=False)) == list(
            parse_string(xml, skip_whitespace=False)
        )


class TestExpatSpecifics:
    def test_incremental_feed(self):
        source = ExpatSource()
        first = list(source.feed("<a><b>te"))
        rest = list(source.feed("xt</b></a>")) + list(source.close())
        tags = [e.tag for e in first + rest if isinstance(e, StartElement)]
        assert tags == ["a", "b"]
        texts = [e.text for e in first + rest if isinstance(e, Characters)]
        assert texts == ["text"]

    def test_syntax_error_carries_position(self):
        with pytest.raises(XmlSyntaxError) as info:
            list(expat_parse_string("<a><b></a>"))
        assert info.value.line is not None

    def test_incomplete_document_rejected_at_close(self):
        source = ExpatSource()
        list(source.feed("<a>"))
        with pytest.raises(XmlSyntaxError):
            list(source.close())

    def test_parse_file(self, tmp_path):
        path = tmp_path / "d.xml"
        path.write_text("<a><b/></a>")
        assert list(expat_parse_file(path)) == list(parse_string("<a><b/></a>"))

    def test_parse_chunks(self):
        chunks = ["<a>", "<b/>", "</a>"]
        assert list(expat_parse_chunks(chunks)) == list(parse_string("<a><b/></a>"))
