"""Replay equivalence: recorded history must evaluate byte-identically.

Mirrors ``tests/test_push_equivalence.py``: live evaluation (pull and
push pipelines) is the reference; :func:`repro.store.replay.replay` over
the recorded log — cold, from every embedded checkpoint, with and
without index skipping — is the subject.  The corpus is 100+ seeded
random documents plus XMark and the paper's recursive chain, ingested
under seed-derived checkpoint cadences, segment sizes and text
chunkings, so checkpoint/segment boundaries land everywhere.
"""

from __future__ import annotations

import random

import pytest

from repro.core.processor import XPathStream
from repro.datasets.xmark import xmark_events
from repro.multiq.engine import MultiQueryEngine
from repro.store import (
    EventLogReader,
    ReplayStats,
    StoreError,
    catch_up,
    ingest,
    interest_for,
    replay,
)
from repro.stream.faults import byte_split_chunks
from repro.stream.recovery import ResourceLimits
from repro.stream.writer import events_to_string

from tests.conftest import chain_xml
from tests.test_push_equivalence import QUERIES, random_document

QUERY_SET = {
    "titles": "//title",
    "cheap": "//book[price < 30]/title",
    "chains": "//a//b",
    "sections": "//section[title]/p",
}


def live_pull(queries: dict, text: str) -> dict:
    engine = MultiQueryEngine(queries)
    engine.feed_text(text)
    return engine.close()


def live_push(queries: dict, text: str) -> dict:
    return MultiQueryEngine(queries).evaluate_push(text)


def ingest_seeded(tmp_path, text: str, seed: int, queries=QUERY_SET):
    """Ingest under a seed-derived cadence/segmentation/chunking."""
    rng = random.Random(seed)
    chunks = byte_split_chunks(text, seed=seed, max_chunk=rng.randrange(5, 64))
    return ingest(
        chunks,
        str(tmp_path / f"store-{seed}"),
        queries=dict(queries),
        checkpoint_interval=rng.randrange(7, 120),
        segment_events=rng.randrange(8, 96),
        sync="none",
    )


class TestReplayEquivalence:
    @pytest.mark.parametrize("seed", range(100))
    def test_seeded_documents_every_checkpoint(self, tmp_path, seed):
        text = random_document(seed)
        pull = live_pull(QUERY_SET, text)
        push = live_push(QUERY_SET, text)
        assert pull == push
        result = ingest_seeded(tmp_path, text, seed)
        assert result.results == pull  # live-during-ingest matches live
        store = str(tmp_path / f"store-{seed}")
        # Cold replay of the whole log.
        assert replay(dict(QUERY_SET), store) == pull
        # Replay resumed from *every* embedded checkpoint.
        for checkpoint in result.checkpoints:
            assert replay(None, store, from_checkpoint=checkpoint) == pull, (
                f"checkpoint {checkpoint} diverged"
            )

    @pytest.mark.parametrize("n", [3, 7, 12])
    def test_recursive_chain_documents(self, tmp_path, n):
        text = chain_xml(n)
        queries = {"pairs": "//a//b", "deep": "//b//c", "pred": "//a[d]//b[e]/c"}
        pull = live_pull(queries, text)
        assert live_push(queries, text) == pull
        result = ingest_seeded(tmp_path, text, seed=n, queries=queries)
        store = str(tmp_path / f"store-{n}")
        assert result.results == pull
        assert replay(dict(queries), store) == pull
        for checkpoint in result.checkpoints:
            assert replay(None, store, from_checkpoint=checkpoint) == pull

    def test_xmark_corpus(self, tmp_path):
        text = events_to_string(xmark_events(0.002))
        queries = {
            "names": "//item/name",
            "bids": "//open_auction//bidder/increase",
            "people": "//person[name]/emailaddress",
        }
        pull = live_pull(queries, text)
        assert live_push(queries, text) == pull
        result = ingest_seeded(tmp_path, text, seed=42, queries=queries)
        store = str(tmp_path / "store-42")
        assert result.results == pull
        assert replay(dict(queries), store) == pull
        for checkpoint in result.checkpoints:
            assert replay(None, store, from_checkpoint=checkpoint) == pull

    @pytest.mark.parametrize("query", QUERIES)
    @pytest.mark.parametrize("seed", range(10))
    def test_single_query_replay(self, tmp_path, query, seed):
        text = random_document(seed * 31 + 7)
        expected = XPathStream(query).evaluate(text)
        ingest(text, str(tmp_path / "s"), checkpoint_interval=25,
               segment_events=16, sync="none")
        assert replay(query, str(tmp_path / "s")) == expected
        (tmp_path / "s").rename(tmp_path / f"s-{seed}-{hash(query) & 0xffff}")

    @pytest.mark.parametrize("seed", range(20))
    def test_pull_mode_ingest_equivalent(self, tmp_path, seed):
        text = random_document(seed + 500)
        result_push = ingest(text, str(tmp_path / "p1"), queries=dict(QUERY_SET),
                             segment_events=32, sync="none", push=True)
        result_pull = ingest(text, str(tmp_path / "p2"), queries=dict(QUERY_SET),
                             segment_events=32, sync="none", push=False)
        assert result_pull.results == result_push.results
        assert result_pull.events == result_push.events
        reader_a = EventLogReader(str(tmp_path / "p1"))
        reader_b = EventLogReader(str(tmp_path / "p2"))
        assert list(reader_a.events()) == list(reader_b.events())


class TestIndexSkipping:
    def _two_zone_doc(self) -> str:
        """Bulk of the document is irrelevant to the selective query."""
        bulk = "".join(
            f"<book><title>T{i}</title><price>{i % 40}</price></book>"
            for i in range(150)
        )
        rare = "".join(f"<x><y>z{i}</y></x>" for i in range(20))
        return f"<catalog>{bulk}<misc>{rare}</misc></catalog>"

    def test_selective_query_skips_segments_exactly(self, tmp_path):
        text = self._two_zone_doc()
        store = str(tmp_path / "s")
        ingest(text, store, segment_events=64, sync="none")
        stats = ReplayStats()
        skipped = replay("//x/y", store, stats=stats)
        unskipped = replay("//x/y", store, skip=False)
        assert skipped == unskipped == XPathStream("//x/y").evaluate(text)
        assert stats.segments_skipped > 0
        assert stats.skip_ratio >= 0.5  # the bulk zone is provably dead

    def test_wildcard_query_never_skips(self, tmp_path):
        store = str(tmp_path / "s")
        ingest(self._two_zone_doc(), store, segment_events=64, sync="none")
        stats = ReplayStats()
        replay("//catalog//*", store, stats=stats)
        assert stats.segments_skipped == 0

    def test_value_test_needs_text_segments(self, tmp_path):
        # '//x[y = "z5"]/y' needs Characters events; a tags-only segment
        # match is not enough to skip text-bearing segments.
        text = self._two_zone_doc()
        store = str(tmp_path / "s")
        ingest(text, store, segment_events=64, sync="none")
        query = '//x[y = "z5"]/y'
        stats = ReplayStats()
        assert replay(query, store, stats=stats) == XPathStream(query).evaluate(text)

    def test_limited_engine_sees_everything(self, tmp_path):
        store = str(tmp_path / "s")
        ingest(self._two_zone_doc(), store, segment_events=64, sync="none")
        engine = MultiQueryEngine()
        engine.add_query("q", "//x/y", limits=ResourceLimits(max_total_events=10**6))
        tags, wants_all, wants_text = engine.interest()
        assert wants_all  # per-query limits force the unfiltered path
        stats = ReplayStats()
        replay(engine, store, stats=stats)
        assert stats.segments_skipped == 0

    @pytest.mark.parametrize("seed", range(15))
    def test_skipping_never_changes_results(self, tmp_path, seed):
        """Differential: skip=True vs skip=False on mixed random docs."""
        text = random_document(seed + 900)
        store = str(tmp_path / "s")
        ingest(text, store, segment_events=12, sync="none")
        for query in ("//a//b", "//section[title]/p", "//book[price < 30]//title"):
            with_skip = replay(query, store)
            without = replay(query, store, skip=False)
            assert with_skip == without, (seed, query)
        (tmp_path / "s").rename(tmp_path / f"s-{seed}")

    def test_interest_for_shapes(self):
        tags, wants_all, wants_text = interest_for("//book/title")
        assert tags == frozenset({"book", "title"})
        assert not wants_all and not wants_text
        _, wants_all, _ = interest_for("//book//*")
        assert wants_all
        _, _, wants_text = interest_for("//book[price < 30]/title")
        assert wants_text
        tags, _, _ = interest_for({"a": "//x/y", "b": "//p/q"})
        assert tags == frozenset({"x", "y", "p", "q"})


class TestLateQueryCatchUp:
    def _run_split(self, tmp_path, text, initial, late_name, late_query, cut=0.5,
                   limits=None):
        """Ingest; pause mid-stream; splice a late query; finish."""
        from repro.store.log import EventLogWriter
        from repro.store.replay import _Tee
        from repro.stream.tokenizer import XmlTokenizer

        store = str(tmp_path / "s")
        engine = MultiQueryEngine(initial)
        writer = EventLogWriter(store, segment_events=24, sync="none")
        writer.attach(engine)
        tokenizer = XmlTokenizer()
        tee = _Tee(engine.as_handler(), writer)
        half = int(len(text) * cut)
        tokenizer.feed_into(text[:half], tee)
        writer.flush()
        result = catch_up(engine, store, late_name, late_query, limits=limits)
        tokenizer.feed_into(text[half:], tee)
        tokenizer.close_into(tee)
        writer.close()
        return engine, result

    @pytest.mark.parametrize("cut", [0.0, 0.25, 0.5, 0.9])
    def test_spliced_query_matches_from_start(self, tmp_path, cut):
        text = random_document(77)
        initial = {"titles": "//title"}
        engine, result = self._run_split(
            tmp_path, text, initial, "late", "//a//b", cut=cut
        )
        reference = MultiQueryEngine({**initial, "late": "//a//b"})
        assert engine.results() == reference.evaluate_push(text)
        # position counts all durable events; replayed may be fewer
        # (segments dead to the late query's interest are skipped).
        assert result.position >= result.events_replayed

    @pytest.mark.parametrize("seed", range(10))
    def test_random_documents_random_cuts(self, tmp_path, seed):
        rng = random.Random(seed)
        text = random_document(seed + 300)
        engine, _ = self._run_split(
            tmp_path, text, {"keep": "//title"}, "late",
            "//book[price < 30]/title", cut=rng.random(),
        )
        reference = MultiQueryEngine(
            {"keep": "//title", "late": "//book[price < 30]/title"}
        )
        assert engine.results() == reference.evaluate_push(text)

    def test_selective_backfill_skips_history(self, tmp_path):
        bulk = "".join(f"<b><t>x{i}</t></b>" for i in range(200))
        text = f"<r>{bulk}<zone><q>hit</q></zone></r>"
        engine, result = self._run_split(
            tmp_path, text, {"all": "//t"}, "late", "//zone/q", cut=0.6
        )
        reference = MultiQueryEngine({"all": "//t", "late": "//zone/q"})
        assert engine.results() == reference.evaluate_push(text)
        assert result.stats.segments_skipped > 0
        assert result.events_replayed < result.position

    def test_attach_warm_duplicate_name_rejected(self, tmp_path):
        text = random_document(5)
        with pytest.raises(ValueError, match="duplicate"):
            self._run_split(tmp_path, text, {"late": "//title"}, "late", "//a")

    def test_catch_up_with_query_limits(self, tmp_path):
        text = random_document(21)
        engine, _ = self._run_split(
            tmp_path, text, {"keep": "//title"}, "late", "//a//b",
            limits=ResourceLimits(max_total_events=10**6),
        )
        reference = MultiQueryEngine({"keep": "//title"})
        reference.add_query("late", "//a//b",
                            limits=ResourceLimits(max_total_events=10**6))
        assert engine.results() == reference.evaluate_push(text)


class TestHostileLogLimits:
    """Satellite regression: limits thread through every replay path."""

    def _bomb_store(self, tmp_path) -> str:
        """A store containing a CRC-valid depth/text bomb."""
        from repro.serve.framing import encode_frame
        from repro.store.log import REC_EVENT, EventLogWriter
        from repro.stream.codec import encode_event
        from repro.stream.events import Characters, StartElement

        import os

        store = str(tmp_path / "bomb")
        writer = EventLogWriter(store, sync="none", checkpoint_interval=2)
        engine = MultiQueryEngine({"q": "//r/a"})
        writer.attach(engine)
        for event in (StartElement("r", 1, 1, {}), StartElement("a", 2, 2, {})):
            engine.feed_events((event,))
            writer.append(event)  # second append fires checkpoint 1
        writer.flush()
        active = os.path.join(store, writer._manifest.active)
        bombs = [
            encode_frame(REC_EVENT, encode_event(StartElement("x", 10**9, 3, {}))),
            encode_frame(REC_EVENT, encode_event(Characters("A" * 100_000, 3))),
        ]
        with open(active, "ab") as handle:
            for bomb in bombs:
                handle.write(bomb)
        return store

    def test_cold_replay_bounded(self, tmp_path):
        store = self._bomb_store(tmp_path)
        limits = ResourceLimits(max_depth=64)
        with pytest.raises(Exception, match="max_depth"):
            replay("//r/a", store, limits=limits, skip=False)

    def test_checkpoint_fast_path_bounded(self, tmp_path):
        """The restore-from-checkpoint path must hit the same wall."""
        store = self._bomb_store(tmp_path)
        limits = ResourceLimits(max_depth=64)
        with pytest.raises(Exception, match="max_depth"):
            replay(None, store, from_checkpoint=1, limits=limits)

    def test_text_bomb_bounded(self, tmp_path):
        store = self._bomb_store(tmp_path)
        limits = ResourceLimits(max_depth=10**12, max_text_length=1024)
        with pytest.raises(Exception, match="max_text_length"):
            replay(None, store, from_checkpoint=1, limits=limits)

    def test_event_count_bomb_bounded(self, tmp_path):
        store = str(tmp_path / "many")
        text = "<r>" + "<a/>" * 500 + "</r>"
        ingest(text, store, sync="none")
        with pytest.raises(Exception, match="max_total_events"):
            replay("//a", store, limits=ResourceLimits(max_total_events=50))

    def test_unlimited_replay_still_works(self, tmp_path):
        store = self._bomb_store(tmp_path)
        # Without limits the bombs decode; nothing crashes.
        results = replay("//r/a", store, skip=False)
        assert results == [2]


class TestReplayErrors:
    def test_no_target_no_checkpoint(self, tmp_path):
        ingest("<r/>", str(tmp_path / "s"), sync="none")
        with pytest.raises(StoreError, match="needs a target"):
            replay(None, str(tmp_path / "s"))

    def test_unknown_checkpoint(self, tmp_path):
        ingest("<r/>", str(tmp_path / "s"), sync="none")
        with pytest.raises(StoreError, match="no checkpoint 44"):
            replay(None, str(tmp_path / "s"), from_checkpoint=44)

    def test_engineless_checkpoint_needs_query(self, tmp_path):
        result = ingest("<r><a/></r>", str(tmp_path / "s"), sync="none")
        with pytest.raises(StoreError, match="no embedded engine"):
            replay(None, str(tmp_path / "s"),
                   from_checkpoint=result.checkpoints[-1])

    def test_queries_and_engine_mutually_exclusive(self, tmp_path):
        with pytest.raises(StoreError, match="not both"):
            ingest("<r/>", str(tmp_path / "s"), queries={"q": "//r"},
                   engine=MultiQueryEngine({"q": "//r"}))
