"""Differential suite for the compilation tiers (``repro.compile``).

The contract under test is the ISSUE-9 acceptance bar: for every query
class the compiled tiers (lazy-DFA front-end, generated dispatch, turbo
scanner) must be **bit-for-bit** equivalent to the interpreted machines
— same solution ids, same order, same snapshots — across 200+ seeded
documents, mid-stream checkpointing, state-cap fallback, and multiq
live add/remove.

Documents are produced by a deterministic seeded generator (no
Hypothesis shrinking here: the point is breadth at a fixed, replayable
corpus), covering nesting, text, attributes, self-closing elements,
comments, CDATA, and entity references — everything that forces the
turbo scanner through its slow-step path.
"""

import json
import random

import pytest

from repro.core.processor import XPathStream
from repro.multiq import MultiQueryEngine

# -- seeded document corpus --------------------------------------------------

TAGS = ("a", "b", "c", "d", "e")


def _element(rng: random.Random, depth: int) -> str:
    tag = rng.choice(TAGS)
    attrs = ""
    if rng.random() < 0.25:
        attrs = f" k='{rng.randint(0, 3)}'"
        if rng.random() < 0.3:
            attrs += f" m=\"{rng.randint(0, 9)}\""
    if rng.random() < 0.12:
        return f"<{tag}{attrs}/>"
    parts = [f"<{tag}{attrs}>"]
    roll = rng.random()
    if roll < 0.35:
        parts.append(rng.choice(["1", "2", "x", "text run", " "]))
    elif roll < 0.42:
        parts.append("&amp;")
    elif roll < 0.46:
        parts.append("<!-- note -->")
    elif roll < 0.49:
        parts.append("<![CDATA[raw <stuff>]]>")
    if depth < 4:
        for _ in range(rng.randint(0, 3)):
            parts.append(_element(rng, depth + 1))
    parts.append(f"</{tag}>")
    return "".join(parts)


def make_document(seed: int) -> str:
    rng = random.Random(seed)
    body = "".join(_element(rng, 1) for _ in range(rng.randint(1, 4)))
    return f"<r>{body}</r>"


PREDICATE_FREE = (
    "//a",
    "//a//b",
    "/r/a/b",
    "//a/b//c",
    "/r//d",
    "//b/c",
)
WILDCARD_HEAVY = (
    "//*",
    "/r/*",
    "//*/a",
    "//a/*/b",
    "/r/*//*",
    "//*//*",
)
PREDICATED = (
    "//a[b]",
    "//a[b]/c",
    "//a[@k]",
    "//a[@k = '1']//b",
    "//b[. = '1']",
    "//a[b and c]",
    "//a[not(b)]/d",
)

SEEDS = range(200)


def _classes(seed: int):
    """Three queries — one per class — chosen deterministically."""
    rng = random.Random(10_000 + seed)
    return (
        rng.choice(PREDICATE_FREE),
        rng.choice(WILDCARD_HEAVY),
        rng.choice(PREDICATED),
    )


# -- pull == push == compiled across the corpus ------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_pull_push_compiled_agree(seed):
    doc = make_document(seed)
    for query in _classes(seed):
        reference = XPathStream(query).evaluate(doc)
        assert XPathStream(query).evaluate_push(doc) == reference
        compiled = XPathStream(query, compiled=True)
        assert compiled.evaluate_push(doc) == reference
        assert XPathStream(query, compiled=True).evaluate(doc) == reference


def test_corpus_exercises_slow_steps():
    """The generator must actually produce the constructs the turbo
    scanner's slow path handles, or the corpus proves less than it
    claims."""
    blob = "".join(make_document(seed) for seed in SEEDS)
    for construct in ("<!--", "<![CDATA[", "&amp;", "/>", "k='"):
        assert construct in blob


# -- explicit engine tiers ---------------------------------------------------


@pytest.mark.parametrize("seed", range(0, 200, 10))
def test_every_tier_matches_reference(seed):
    doc = make_document(seed)
    cases = (
        ("//a//b", "pathm"),   # explicit pathm + compiled -> CompiledPathM
        ("//a//b", "dfa"),     # explicit DFA front-end
        ("//a[b]/c", None),    # auto -> CompiledTwigM under compiled=True
    )
    for query, engine in cases:
        reference = XPathStream(query).evaluate(doc)
        stream = XPathStream(query, engine=engine, compiled=True)
        assert stream.evaluate_push(doc) == reference


# -- mid-stream snapshot/restore across the DFA cache ------------------------


@pytest.mark.parametrize("seed", range(0, 200, 5))
def test_compiled_snapshot_restore_mid_stream(seed):
    doc = make_document(seed)
    query = _classes(seed)[0]
    reference = XPathStream(query).evaluate(doc)
    cut = len(doc) // 2

    stream = XPathStream(query, compiled=True)
    stream.feed_text_push(doc[:cut])
    snap = stream.snapshot()
    json.dumps(snap)  # the capture must be serializable

    resumed = XPathStream.restore(snap)
    assert resumed._compiled
    resumed.feed_text_push(doc[cut:])
    assert resumed.close() == reference

    # The restored machine's NFA configuration must equal that of a
    # reference-driven twin restored from the same capture: the DFA
    # transition cache is reconstructible state and is *not* captured.
    twin = XPathStream.restore(snap)
    twin.feed_text(doc[cut:])
    assert twin.close() == reference


def test_snapshot_has_no_dfa_transition_cache():
    stream = XPathStream("//a//b", compiled=True)
    stream.feed_text_push("<r><a><b/></a><c>")
    snap = stream.snapshot()
    machine = snap["machine"]
    assert "dfa" in machine
    assert "trans" not in json.dumps(machine)
    # Restore rebuilds states lazily: cold cache, same behaviour.
    resumed = XPathStream.restore(snap)
    assert resumed.push_handler().dfa_state_count <= len(machine["dfa"]["stack"])


# -- state-cap fallback mid-document -----------------------------------------


@pytest.mark.parametrize("seed", range(0, 60, 3))
@pytest.mark.parametrize("cap", (1, 2, 4))
def test_state_cap_fallback_mid_document(seed, cap):
    doc = make_document(seed)
    for query in ("//*//*", "//a/*/b", "//*/c"):
        reference = XPathStream(query).evaluate(doc)
        stream = XPathStream(query, compiled=True, state_cap=cap)
        assert stream.evaluate_push(doc) == reference


def test_state_cap_fallback_counts_and_survives_snapshot():
    doc = make_document(7)
    query = "//*//*"
    reference = XPathStream(query).evaluate(doc)
    stream = XPathStream(query, compiled=True, state_cap=1)
    cut = len(doc) // 3
    stream.feed_text_push(doc[:cut])
    handler = stream.push_handler()
    assert handler.fell_back
    assert handler._fallbacks >= 1
    snap = stream.snapshot()
    assert snap["machine"]["fallen"] is True
    resumed = XPathStream.restore(snap)
    resumed.feed_text_push(doc[cut:])
    assert resumed.close() == reference


# -- multiq: compiled units, dedup, live add/remove --------------------------

MULTI_QUERIES = {
    "pf1": "//a//b",
    "pf1_dup": "//a//b",
    "pf2": "/r/a/b",
    "wild": "//a/*/b",
    "pred": "//a[b]/c",
}


@pytest.mark.parametrize("seed", range(0, 100, 5))
def test_multiq_compiled_matches_interpreted(seed):
    doc = make_document(seed)
    reference = MultiQueryEngine(MULTI_QUERIES).evaluate(doc)
    compiled = MultiQueryEngine(MULTI_QUERIES, compiled=True)
    assert compiled.evaluate_push(doc) == reference
    # Dedup must share compiled units exactly as interpreted ones.
    assert compiled.unit_count() == MultiQueryEngine(MULTI_QUERIES).unit_count()
    engines = compiled.engine_names()
    assert engines["pf1"] == engines["pf1_dup"] == "dfa"
    assert engines["pred"] == "twigm"


@pytest.mark.parametrize("seed", range(0, 60, 4))
def test_multiq_live_add_remove_compiled(seed):
    doc = make_document(seed)
    chunks = [doc[i:i + 41] for i in range(0, len(doc), 41)]
    third = max(1, len(chunks) // 3)

    def run(compiled: bool):
        engine = MultiQueryEngine({"base": "//a//b"}, compiled=compiled)
        for index, chunk in enumerate(chunks):
            if index == third:
                engine.add_query("late", "//c")
            if index == 2 * third:
                engine.remove_query("base")
            engine.feed_text_push(chunk)
        return engine.close()

    assert run(True) == run(False)


@pytest.mark.parametrize("seed", range(0, 60, 6))
def test_multiq_compiled_snapshot_restore(seed):
    doc = make_document(seed)
    reference = MultiQueryEngine(MULTI_QUERIES).evaluate(doc)
    cut = len(doc) // 2
    engine = MultiQueryEngine(MULTI_QUERIES, compiled=True)
    engine.feed_text_push(doc[:cut])
    snap = engine.snapshot()
    json.dumps(snap)
    assert snap["compiled"] is True
    resumed = MultiQueryEngine.restore(snap)
    assert resumed._compiled
    resumed.feed_text_push(doc[cut:])
    assert resumed.close() == reference


def test_multiq_turbo_gating():
    """Turbo engages only when every unit is a turbo-safe path machine
    and no registration delivers through a callback."""
    pf = MultiQueryEngine({"x": "//a//b", "y": "/r/c"}, compiled=True)
    assert pf.as_handler().turbo_scan_safe

    with_pred = MultiQueryEngine({"x": "//a//b", "p": "//a[b]"}, compiled=True)
    assert not with_pred.as_handler().turbo_scan_safe

    with_cb = MultiQueryEngine(
        {"x": "//a//b"}, on_match=lambda name, node_id: None, compiled=True
    )
    assert not with_cb.as_handler().turbo_scan_safe

    interpreted = MultiQueryEngine({"x": "//a//b"})
    assert not interpreted.as_handler().turbo_scan_safe

    # Gating is live: removing the blocking query re-enables turbo.
    with_pred.remove_query("p")
    assert with_pred.as_handler().turbo_scan_safe
