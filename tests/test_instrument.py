"""Tests for the instrumented engine (repro.core.instrument) — the
empirical side of Theorem 4.4 and the figure 1 space claim."""

from repro.core.instrument import InstrumentedTwigM
from repro.core.twigm import TwigM
from repro.stream.tokenizer import parse_string
from tests.conftest import chain_c1_id, chain_xml


def run_counts(query, xml):
    machine = InstrumentedTwigM(query)
    machine.feed(parse_string(xml))
    return machine


class TestCountersMatchSemantics:
    def test_results_identical_to_plain_twigm(self):
        for query in ("//a[d]//b[e]//c", "//a//b", "//a[@x]/b"):
            for xml in (chain_xml(5), "<a x='1'><b/><d/></a>"):
                plain = TwigM(query)
                plain.feed(parse_string(xml))
                inst = run_counts(query, xml)
                assert inst.results == plain.results, (query, xml)

    def test_pushes_equal_pops(self):
        machine = run_counts("//a[d]//b[e]//c", chain_xml(8))
        assert machine.counts.pushes == machine.counts.pops

    def test_event_count(self):
        machine = run_counts("//a", "<a><b/></a>")
        assert machine.counts.events == 4


class TestPaperSpaceClaim:
    def test_peak_entries_linear_not_quadratic(self):
        """Figure 1 / contribution 1: 2n entries encode n² matches."""
        for n in (10, 20, 40):
            machine = run_counts("//a[d]//b[e]//c", chain_xml(n))
            assert machine.counts.peak_entries <= 2 * n + 2
            assert machine.results == [chain_c1_id(n)]

    def test_work_scales_linearly_on_chain(self):
        """Theorem 4.4: polynomial (here linear) total work in |D|."""
        small = run_counts("//a[d]//b[e]//c", chain_xml(20)).counts.total_work()
        large = run_counts("//a[d]//b[e]//c", chain_xml(40)).counts.total_work()
        # Doubling the data should roughly double the work (not 4x).
        assert large < 3 * small

    def test_flag_sets_bounded_by_depth_times_query(self):
        n = 25
        machine = run_counts("//a[d]//b[e]//c", chain_xml(n))
        counts = machine.counts
        # Each pop touches at most one parent stack (≤ depth entries).
        assert counts.flag_sets <= counts.pops * (2 * n + 2)

    def test_emitted_counter(self):
        machine = run_counts("//a//c", "<a><c/><c/></a>")
        assert machine.counts.emitted == 2
