"""Tests for the ``twigm`` CLI (repro.cli) and the bench CLI."""

import pytest

from repro.bench.cli import main as bench_main
from repro.cli import main as twigm_main


@pytest.fixture
def catalog(tmp_path):
    path = tmp_path / "catalog.xml"
    path.write_text(
        "<catalog>"
        "<book><price>25</price><title>Cheap</title></book>"
        "<book><price>60</price><title>Dear</title></book>"
        "</catalog>"
    )
    return str(path)


class TestTwigmCli:
    def test_ids_output(self, catalog, capsys):
        code = twigm_main(["//book//title", catalog])
        out = capsys.readouterr().out.split()
        assert code == 0
        assert out == ["4", "7"]

    def test_no_match_exit_code(self, catalog, capsys):
        assert twigm_main(["//zzz", catalog]) == 1
        assert capsys.readouterr().out == ""

    def test_count_mode(self, catalog, capsys):
        assert twigm_main(["--count", "//book", catalog]) == 0
        assert capsys.readouterr().out.strip() == "2"

    def test_value_predicate(self, catalog, capsys):
        twigm_main(["//book[price < 30]/title", catalog])
        assert capsys.readouterr().out.split() == ["4"]

    def test_fragments_mode(self, catalog, capsys):
        assert twigm_main(["--fragments", "//book[price < 30]/title", catalog]) == 0
        assert capsys.readouterr().out.strip() == "<title>Cheap</title>"

    def test_fragments_no_match(self, catalog, capsys):
        assert twigm_main(["--fragments", "//zzz", catalog]) == 1

    def test_stdin_source(self, catalog, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("<a><b/></a>"))
        assert twigm_main(["//b", "-"]) == 0
        assert capsys.readouterr().out.strip() == "2"

    def test_explain_flag(self, catalog, capsys):
        twigm_main(["--explain", "//book//title", catalog])
        err = capsys.readouterr().err
        assert "pathm" in err and "XP{/,//,*}" in err

    def test_engine_override(self, catalog, capsys):
        assert twigm_main(["--engine", "twigm", "//book//title", catalog]) == 0
        assert capsys.readouterr().out.split() == ["4", "7"]

    def test_bad_query_reports_error(self, catalog, capsys):
        assert twigm_main(["//book[", catalog]) == 2
        assert "twigm:" in capsys.readouterr().err

    def test_missing_file_reports_error(self, capsys):
        assert twigm_main(["//a", "/nonexistent/file.xml"]) == 2
        assert "twigm:" in capsys.readouterr().err

    def test_malformed_xml_reports_error(self, tmp_path, capsys):
        path = tmp_path / "bad.xml"
        path.write_text("<a><b></a>")
        assert twigm_main(["//a", str(path)]) == 2

    def test_fragments_with_explain(self, catalog, capsys):
        assert twigm_main(["--fragments", "--explain", "//book[price < 30]", catalog]) == 0
        captured = capsys.readouterr()
        assert "fragment capture" in captured.err
        assert captured.out.startswith("<book>")

    def test_count_with_engine_override(self, catalog, capsys):
        assert twigm_main(["--count", "--engine", "twigm", "//book", catalog]) == 0
        assert capsys.readouterr().out.strip() == "2"


class TestMultiQueryCli:
    @pytest.fixture
    def query_file(self, tmp_path):
        path = tmp_path / "queries.txt"
        path.write_text(
            "# standing queries\n"
            "cheap\t//book[price < 30]/title\n"
            "titles //title\n"
        )
        return str(path)

    def test_tab_separated_output(self, query_file, catalog, capsys):
        assert twigm_main(["--queries", query_file, catalog]) == 0
        lines = sorted(capsys.readouterr().out.splitlines())
        assert "cheap\t4" in lines
        assert "titles\t4" in lines and "titles\t7" in lines

    def test_count_mode(self, query_file, catalog, capsys):
        assert twigm_main(["--queries", query_file, "--count", catalog]) == 0
        out = dict(line.split("\t") for line in capsys.readouterr().out.splitlines())
        assert out == {"cheap": "1", "titles": "2"}

    def test_explain_lists_engines(self, query_file, catalog, capsys):
        twigm_main(["--queries", query_file, "--explain", catalog])
        err = capsys.readouterr().err
        assert "[twigm]" in err and "[pathm]" in err

    def test_no_match_exit_code(self, tmp_path, catalog, capsys):
        path = tmp_path / "q.txt"
        path.write_text("nada //zzz\n")
        assert twigm_main(["--queries", str(path), catalog]) == 1

    def test_query_and_queries_conflict(self, query_file, catalog, capsys):
        with pytest.raises(SystemExit):
            twigm_main(["--queries", query_file, "//a", catalog])

    def test_missing_query_is_an_error(self, capsys):
        with pytest.raises(SystemExit):
            twigm_main([])

    def test_bad_query_file(self, tmp_path, catalog, capsys):
        path = tmp_path / "q.txt"
        path.write_text("onlyname\n")
        assert twigm_main(["--queries", str(path), catalog]) == 2
        assert "twigm:" in capsys.readouterr().err

    def test_duplicate_names_rejected(self, tmp_path, catalog, capsys):
        path = tmp_path / "q.txt"
        path.write_text("a //x\na //y\n")
        assert twigm_main(["--queries", str(path), catalog]) == 2

    def test_empty_query_file(self, tmp_path, catalog, capsys):
        path = tmp_path / "q.txt"
        path.write_text("# nothing here\n")
        assert twigm_main(["--queries", str(path), catalog]) == 2


class TestBenchCli:
    @pytest.fixture(autouse=True)
    def _isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path / "cache"))

    def test_list(self, capsys):
        assert bench_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "7a" in out and "10" in out

    def test_figure6_runs(self, capsys):
        assert bench_main(["--figure", "6"]) == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_figure5_runs(self, capsys):
        assert bench_main(["--figure", "5", "--profile", "tiny"]) == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_no_arguments_is_an_error(self, capsys):
        assert bench_main([]) == 2

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            bench_main(["--figure", "nope"])
