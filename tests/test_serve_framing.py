"""Wire framing: round trips, corruption detection, bounded allocation."""

from __future__ import annotations

import struct

import pytest

from repro.serve.framing import (
    Frame,
    FrameDecoder,
    FrameError,
    FrameType,
    decode_data,
    encode_data,
    encode_frame,
    encode_json,
)


class TestRoundTrip:
    def test_empty_payload(self):
        decoder = FrameDecoder()
        frames = decoder.feed(encode_frame(FrameType.PING))
        assert len(frames) == 1
        assert frames[0].type == FrameType.PING
        assert frames[0].payload == b""

    def test_json_payload(self):
        payload = {"queries": {"q": "//a//b"}, "tenant": "t1", "priority": 3}
        decoder = FrameDecoder()
        (frame,) = decoder.feed(encode_json(FrameType.HELLO, payload))
        assert frame.json() == payload

    def test_data_payload_with_offset(self):
        decoder = FrameDecoder()
        (frame,) = decoder.feed(encode_data(12345, "<a>☃</a>"))
        assert decode_data(frame) == (12345, "<a>☃</a>")

    def test_many_frames_one_feed(self):
        blob = b"".join(encode_json(FrameType.RESULT, {"seq": i}) for i in range(10))
        frames = FrameDecoder().feed(blob)
        assert [f.json()["seq"] for f in frames] == list(range(10))

    def test_byte_at_a_time_reassembly(self):
        wire = encode_data(7, "<doc>text</doc>")
        decoder = FrameDecoder()
        collected = []
        for i in range(len(wire)):
            collected += decoder.feed(wire[i:i + 1])
        assert len(collected) == 1
        assert decode_data(collected[0]) == (7, "<doc>text</doc>")
        assert decoder.pending == 0


class TestCorruption:
    def test_flipped_payload_bit_raises(self):
        wire = bytearray(encode_data(0, "<a>hello</a>"))
        wire[-3] ^= 0x10
        with pytest.raises(FrameError, match="CRC mismatch"):
            FrameDecoder().feed(bytes(wire))

    def test_flipped_type_byte_raises(self):
        wire = bytearray(encode_json(FrameType.RESULT, {"seq": 1}))
        wire[4] ^= 0x01  # the type byte, covered by the CRC
        with pytest.raises(FrameError, match="CRC mismatch"):
            FrameDecoder().feed(bytes(wire))

    def test_oversized_length_rejected_before_allocation(self):
        header = struct.Struct("!IBI").pack(2**31, FrameType.DATA, 0)
        with pytest.raises(FrameError, match="exceeds limit"):
            FrameDecoder(max_frame=1024).feed(header)

    def test_good_prefix_survives_corrupt_tail(self):
        """Valid frames ahead of a corrupt one in the same batch are
        delivered; the error surfaces on the *next* feed."""
        good = [encode_data(i * 10, f"<a>{i}</a>") for i in range(3)]
        bad = bytearray(encode_data(30, "<a>bad</a>"))
        bad[-2] ^= 0xFF
        decoder = FrameDecoder()
        frames = decoder.feed(b"".join(good) + bytes(bad))
        assert [decode_data(f)[0] for f in frames] == [0, 10, 20]
        assert decoder.failed
        with pytest.raises(FrameError, match="CRC mismatch"):
            decoder.feed(b"")

    def test_decoder_dead_after_error(self):
        wire = bytearray(encode_frame(FrameType.PING))
        wire[-1] ^= 0x01 if len(wire) > 9 else 0
        # corrupt the CRC field itself on an empty-payload frame
        wire = bytearray(encode_frame(FrameType.PING))
        wire[8] ^= 0x01
        decoder = FrameDecoder()
        with pytest.raises(FrameError):
            decoder.feed(bytes(wire))
        with pytest.raises(FrameError):
            decoder.feed(encode_frame(FrameType.PING))  # even valid bytes

    def test_non_json_control_payload(self):
        (frame,) = FrameDecoder().feed(encode_frame(FrameType.HELLO, b"\xff\xfe"))
        with pytest.raises(FrameError, match="not valid JSON"):
            frame.json()

    def test_non_object_json_payload(self):
        (frame,) = FrameDecoder().feed(encode_frame(FrameType.HELLO, b"[1,2]"))
        with pytest.raises(FrameError, match="not a JSON object"):
            frame.json()

    def test_truncated_data_frame(self):
        (frame,) = FrameDecoder().feed(encode_frame(FrameType.DATA, b"\x00\x01"))
        with pytest.raises(FrameError, match="shorter than its offset"):
            decode_data(frame)

    def test_invalid_utf8_data_payload(self):
        payload = struct.Struct("!Q").pack(0) + b"\xff\xfe<a/>"
        (frame,) = FrameDecoder().feed(encode_frame(FrameType.DATA, payload))
        with pytest.raises(FrameError, match="not valid UTF-8"):
            decode_data(frame)


class TestNames:
    def test_every_type_code_has_a_name(self):
        codes = {
            value for name, value in vars(FrameType).items()
            if name.isupper() and isinstance(value, int)
        }
        assert codes == set(FrameType.NAMES)

    def test_unknown_type_still_renders(self):
        assert Frame(200, b"x").name == "type-200"
