"""Regression pin: pull and push report identical recovery diagnostics.

The repaired-event path was audited for double counting — a diagnostic
synthesized during recovery must be reported exactly once whether the
stream runs through the pull tokenizer (``feed``) or the fused push
path (``feed_into``), in one shot or chunked, with or without a
mid-stream checkpoint.  These tests pin that audit as executable truth:
any future change that re-feeds repaired events through the scanner (or
forks the diagnostic callback) breaks them immediately.
"""

from __future__ import annotations

import pytest

from repro.core.processor import XPathStream
from repro.stream.events import EventCollector
from repro.stream.faults import corrupt_text
from repro.stream.recovery import RecoveryPolicy
from repro.stream.tokenizer import XmlTokenizer

from tests.conftest import chain_xml

QUERY = "//a//b"
SEEDS = range(40)
POLICIES = (RecoveryPolicy.SKIP, RecoveryPolicy.REPAIR)


def pull_outcome(text: str, policy, chunk: int | None = None):
    """(diagnostic count, results) through the pull tokenizer."""
    diagnostics = []
    stream = XPathStream(QUERY, policy=policy,
                         on_diagnostic=diagnostics.append)
    if chunk is None:
        stream.feed_text(text)
    else:
        for start in range(0, len(text), chunk):
            stream.feed_text(text[start:start + chunk])
    results = stream.close()
    return len(diagnostics), results


def push_outcome(text: str, policy, chunk: int | None = None):
    """(diagnostic count, results) through the fused push path."""
    diagnostics = []
    stream = XPathStream(QUERY, policy=policy,
                         on_diagnostic=diagnostics.append)
    if chunk is None:
        stream.feed_text_push(text)
    else:
        for start in range(0, len(text), chunk):
            stream.feed_text_push(text[start:start + chunk])
    results = stream.close()
    return len(diagnostics), results


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("seed", SEEDS)
def test_pull_push_diagnostic_parity(policy, seed):
    text, _faults = corrupt_text(chain_xml(6), seed, faults=2)
    assert pull_outcome(text, policy) == push_outcome(text, policy)


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("chunk", (7, 64))
def test_chunked_feeds_report_each_diagnostic_once(policy, seed, chunk):
    text, _faults = corrupt_text(chain_xml(6), seed, faults=2)
    whole = pull_outcome(text, policy)
    assert pull_outcome(text, policy, chunk=chunk) == whole
    assert push_outcome(text, policy, chunk=chunk) == whole


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("seed", range(12))
def test_checkpoint_resume_does_not_replay_diagnostics(policy, seed):
    text, _faults = corrupt_text(chain_xml(6), seed, faults=2)
    whole = pull_outcome(text, policy)

    diagnostics = []
    first = XPathStream(QUERY, policy=policy,
                        on_diagnostic=diagnostics.append)
    mid = len(text) // 2
    first.feed_text(text[:mid])
    resumed = XPathStream.restore(first.snapshot(),
                                  on_diagnostic=diagnostics.append)
    resumed.feed_text(text[mid:])
    results = resumed.close()
    assert (len(diagnostics), results) == whole


@pytest.mark.parametrize("seed", range(12))
def test_tokenizer_diagnostic_count_matches_callback(seed):
    """The tokenizer's own counter agrees with callback deliveries."""
    text, _faults = corrupt_text(chain_xml(6), seed, faults=2)
    delivered = []
    tokenizer = XmlTokenizer(policy=RecoveryPolicy.REPAIR,
                             on_diagnostic=delivered.append)
    collector = EventCollector()
    tokenizer.feed_into(text, collector)
    tokenizer.close_into(collector)
    assert tokenizer.diagnostic_count == len(delivered)
