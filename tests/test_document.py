"""Tests for the in-memory XML tree (repro.stream.document)."""

import pytest

from repro.errors import StreamStateError
from repro.stream.document import build_document
from repro.stream.events import Characters, EndElement, StartElement
from repro.stream.tokenizer import parse_string


def doc_of(xml: str):
    return build_document(parse_string(xml, skip_whitespace=False))


class TestBuildDocument:
    def test_root(self, book_catalog_document):
        assert book_catalog_document.root.tag == "catalog"
        assert book_catalog_document.root.level == 1
        assert book_catalog_document.root.node_id == 1

    def test_children(self):
        document = doc_of("<a><b/><c/></a>")
        assert [child.tag for child in document.root.children] == ["b", "c"]

    def test_parent_links(self):
        document = doc_of("<a><b><c/></b></a>")
        c = document.root.children[0].children[0]
        assert c.parent.tag == "b"
        assert c.parent.parent.tag == "a"
        assert document.root.parent is None

    def test_attributes(self):
        document = doc_of("<a x='1'><b y='2'/></a>")
        assert document.root.attributes == {"x": "1"}
        assert document.root.children[0].attributes == {"y": "2"}

    def test_ids_match_stream(self):
        document = doc_of("<a><b/><c><d/></c></a>")
        ids = [element.node_id for element in document.iter_elements()]
        assert ids == [1, 2, 3, 4]

    def test_mismatched_events_rejected(self):
        events = [StartElement("a", 1, 1, {}), EndElement("b", 1)]
        with pytest.raises(StreamStateError):
            build_document(events)

    def test_unclosed_rejected(self):
        with pytest.raises(StreamStateError, match="unclosed"):
            build_document([StartElement("a", 1, 1, {})])

    def test_empty_rejected(self):
        with pytest.raises(StreamStateError, match="empty"):
            build_document([])

    def test_multiple_roots_rejected(self):
        events = [
            StartElement("a", 1, 1, {}), EndElement("a", 1),
            StartElement("b", 1, 2, {}), EndElement("b", 1),
        ]
        with pytest.raises(StreamStateError, match="multiple"):
            build_document(events)

    def test_text_outside_root_rejected(self):
        with pytest.raises(StreamStateError, match="outside"):
            build_document([Characters("x", 0)])


class TestTextHandling:
    def test_direct_text(self):
        document = doc_of("<a>hi</a>")
        assert document.root.text == "hi"

    def test_text_runs_preserved(self):
        document = doc_of("<a>one<b/>two</a>")
        assert document.root.text_runs == ["one", "two"]

    def test_string_value_includes_descendants(self):
        document = doc_of("<a>x<b>y<c>z</c></b>w</a>")
        assert document.root.string_value() == "xyzw"

    def test_string_value_document_order(self):
        document = doc_of("<a><b>1</b>mid<c>2</c></a>")
        assert document.root.string_value() == "1mid2"

    def test_empty_string_value(self):
        assert doc_of("<a><b/></a>").root.string_value() == ""


class TestNavigation:
    def test_iter_descendants_order(self):
        document = doc_of("<a><b><c/></b><d/></a>")
        assert [e.tag for e in document.root.iter_descendants()] == ["b", "c", "d"]

    def test_iter_subtree_includes_self(self):
        document = doc_of("<a><b/></a>")
        assert [e.tag for e in document.root.iter_subtree()] == ["a", "b"]

    def test_find_children_by_tag(self):
        document = doc_of("<a><b/><c/><b/></a>")
        assert len(document.root.find_children("b")) == 2

    def test_find_children_wildcard(self):
        document = doc_of("<a><b/><c/></a>")
        assert len(document.root.find_children("*")) == 2

    def test_element_count_and_depth(self):
        document = doc_of("<a><b><c/></b></a>")
        assert document.element_count() == 3
        assert document.depth() == 3

    def test_element_by_id(self):
        document = doc_of("<a><b/><c/></a>")
        assert document.element_by_id(3).tag == "c"
        assert document.element_by_id(99) is None


class TestRoundTrip:
    @pytest.mark.parametrize(
        "xml",
        [
            "<a/>",
            "<a><b/><c/></a>",
            "<a x='1'>text<b>inner</b>tail</a>",
        ],
    )
    def test_to_events_round_trip(self, xml):
        original = list(parse_string(xml, skip_whitespace=False))
        document = build_document(iter(original))
        assert list(document.to_events()) == original

    def test_to_events_can_drop_text(self):
        document = doc_of("<a>text<b/></a>")
        events = list(document.to_events(include_text=False))
        assert all(not isinstance(e, Characters) for e in events)
