"""Tokenizer push-path units: buffering, fast-skip counters, chunk sources.

Companion to the differential suite (``test_push_equivalence.py``):
these tests pin the *internal* guarantees of the hot-path work — eager
chunk buffering is O(total), unconsumed feeds never lose data, and the
machines' ``characters`` fast-skip counters track value-tested nodes
exactly.
"""

from __future__ import annotations

import pytest

from repro import XPathStream
from repro.core.branchm import BranchM
from repro.core.twigm import TwigM
from repro.stream.events import Characters, CountingHandler, EventCollector
from repro.stream.tokenizer import (
    XmlTokenizer,
    iter_text_chunks,
    parse_string,
)
from repro.xpath.querytree import compile_query


def big_document(books: int = 3200) -> str:
    parts = ["<catalog>"]
    for index in range(books):
        parts.append(
            f"<book id='b{index}'><title>Volume {index}</title>"
            f"<price>{index % 90}</price></book>"
        )
    parts.append("</catalog>")
    return "".join(parts)


class TestBufferGrowth:
    def test_small_chunk_feed_keeps_buffer_bounded(self):
        """Regression: the retained scan buffer must hold only the
        unconsumed tail, not an ever-growing prefix of the document."""
        text = big_document()
        assert len(text) > 200_000
        tokenizer = XmlTokenizer()
        events = 0
        chunk_size = 512
        for offset in range(0, len(text), chunk_size):
            for _event in tokenizer.feed(text[offset : offset + chunk_size]):
                events += 1
            retained = len(tokenizer._buffer) + sum(
                len(chunk) for chunk in tokenizer._pending
            )
            assert retained <= 2 * chunk_size
        events += len(tokenizer.close())
        assert events == len(list(parse_string(text)))

    def test_undrained_feeds_append_without_copying(self):
        """Feeding without draining must neither drop chunks nor re-join
        the accumulated text per feed (the old quadratic re-copy)."""
        tokenizer = XmlTokenizer()
        chunks = ["<root>", "<a>one</a>", "<b>two</b>"]
        for chunk in chunks:
            tokenizer.feed(chunk)  # generator deliberately not iterated
        # Chunks are held as-is; the single join happens on next drain.
        assert tokenizer._pending == chunks
        assert tokenizer._buffer == ""
        events = list(tokenizer.feed("</root>"))
        collected = [getattr(e, "tag", getattr(e, "text", None)) for e in events]
        assert collected == ["root", "a", "one", "a", "b", "two", "b", "root"]

    def test_undrained_push_chunks_all_arrive(self):
        tokenizer = XmlTokenizer()
        collector = EventCollector()
        for chunk in ("<root><a>x", "</a><b>y</b>", "</root>"):
            tokenizer.feed_into(chunk, collector)
        tokenizer.close_into(collector)
        assert collector.events == list(parse_string("<root><a>x</a><b>y</b></root>"))

    def test_large_document_push_in_small_chunks(self):
        text = big_document(1000)
        expected = len(list(parse_string(text)))
        tokenizer = XmlTokenizer()
        handler = CountingHandler()
        for offset in range(0, len(text), 256):
            tokenizer.feed_into(text[offset : offset + 256], handler)
            assert len(tokenizer._buffer) <= 512
        tokenizer.close_into(handler)
        assert handler.total == expected


class TestCharactersFastSkip:
    def test_twigm_without_value_tests_never_opens(self, book_catalog_xml):
        engine = TwigM(compile_query("//book//title"))
        engine.feed(parse_string(book_catalog_xml))
        assert engine._open_value_entries == 0

    def test_twigm_counter_tracks_value_nodes(self):
        engine = TwigM(compile_query("//book[price < 30]/title"))
        handler = engine.as_handler()
        handler.start_element("book", 1, 1, {})
        assert engine._open_value_entries == 0
        handler.start_element("price", 2, 2, {})
        assert engine._open_value_entries == 1
        handler.characters("25", 3)
        handler.end_element("price", 2)
        assert engine._open_value_entries == 0
        handler.end_element("book", 1)

    def test_twigm_characters_noop_when_closed(self):
        engine = TwigM(compile_query("//book[price < 30]/title"))
        handler = engine.as_handler()
        handler.start_element("book", 1, 1, {})
        handler.characters("stray text", 2)  # no price open: fast path
        assert engine._open_value_entries == 0

    def test_branchm_counter_tracks_value_slots(self):
        engine = BranchM(compile_query("/catalog/book[price < 30]/title"))
        handler = engine.as_handler()
        handler.start_element("catalog", 1, 1, {})
        handler.start_element("book", 2, 2, {})
        assert engine._open_value_slots == 0
        handler.start_element("price", 3, 3, {})
        assert engine._open_value_slots == 1
        handler.characters("10", 4)
        handler.end_element("price", 3)
        assert engine._open_value_slots == 0

    def test_counter_survives_snapshot_restore(self, book_catalog_xml):
        stream = XPathStream("//book[price < 30]//title")
        # Stop mid-<price>: the value node is open at the checkpoint.
        head = book_catalog_xml[: book_catalog_xml.index("<price>") + len("<price>2")]
        stream.feed_text_push(head)
        assert stream.engine._open_value_entries == 1
        resumed = XPathStream.restore(stream.snapshot())
        assert resumed.engine._open_value_entries == 1
        resumed.feed_text_push(book_catalog_xml[len(head) :])
        expected = XPathStream("//book[price < 30]//title").evaluate(book_catalog_xml)
        assert resumed.close() == expected

    def test_reset_clears_counter(self):
        engine = TwigM(compile_query("//book[price < 30]/title"))
        handler = engine.as_handler()
        handler.start_element("book", 1, 1, {})
        handler.start_element("price", 2, 2, {})
        assert engine._open_value_entries == 1
        engine.reset()
        assert engine._open_value_entries == 0


class TestIterTextChunks:
    def test_xml_string_passes_through_whole(self):
        assert list(iter_text_chunks("<a>hi</a>")) == ["<a>hi</a>"]

    def test_path_reads_in_chunks(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text("<a>" + "x" * 100 + "</a>", encoding="utf-8")
        chunks = list(iter_text_chunks(path, chunk_size=16))
        assert "".join(chunks) == path.read_text(encoding="utf-8")
        assert all(len(chunk) <= 16 for chunk in chunks)

    def test_file_object(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text("<a><b/></a>", encoding="utf-8")
        with open(path, "r", encoding="utf-8") as handle:
            assert "".join(iter_text_chunks(handle)) == "<a><b/></a>"

    def test_chunk_iterable(self):
        assert list(iter_text_chunks(["<a>", "</a>"])) == ["<a>", "</a>"]

    def test_event_stream_rejected(self):
        events = list(parse_string("<a/>"))
        with pytest.raises(TypeError, match="text chunks"):
            list(iter_text_chunks(events))
