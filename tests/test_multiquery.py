"""Tests for multi-query evaluation (repro.core.multiquery).

The historical broadcast dispatcher is now a deprecated shim over
:class:`repro.multiq.MultiQueryEngine`; these tests pin its public API
and callback semantics through the veneer.
"""

import pytest

from repro.core.multiquery import MultiQueryStream
from repro.core.processor import XPathStream
from repro.stream.tokenizer import parse_string

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


XML = (
    "<catalog>"
    "<book year='2006'><price>25</price><title>A</title></book>"
    "<book year='1999'><price>60</price><title>B</title></book>"
    "</catalog>"
)

QUERIES = {
    "cheap": "//book[price < 30]/title",
    "recent": "//book[@year = '2006']/title",
    "titles": "//title",
}


def test_construction_warns_deprecated():
    with pytest.warns(DeprecationWarning, match="MultiQueryEngine"):
        MultiQueryStream({"t": "//title"})


class TestEvaluation:
    def test_one_pass_matches_individual_runs(self):
        combined = MultiQueryStream(QUERIES).evaluate(XML)
        for name, query in QUERIES.items():
            alone = XPathStream(query).evaluate(XML)
            assert sorted(combined[name]) == sorted(alone), name

    def test_engine_dispatch_per_query(self):
        engines = MultiQueryStream(QUERIES).engine_names()
        assert engines["titles"] == "pathm"
        assert engines["cheap"] == "twigm"

    def test_names(self):
        assert MultiQueryStream(QUERIES).names == list(QUERIES)

    def test_empty_query_set_rejected(self):
        with pytest.raises(ValueError):
            MultiQueryStream({})


class TestIncremental:
    def test_feed_text_chunks(self):
        feed = MultiQueryStream(QUERIES)
        for index in range(0, len(XML), 16):
            feed.feed_text(XML[index:index + 16])
        results = feed.close()
        assert results["titles"] == [4, 7]

    def test_callback_mode(self):
        seen = []
        feed = MultiQueryStream(QUERIES, on_match=lambda name, i: seen.append((name, i)))
        feed.feed_events(parse_string(XML))
        assert ("titles", 4) in seen
        assert ("cheap", 4) in seen
        assert ("recent", 4) in seen
        assert feed.close() is None

    def test_results_unavailable_in_callback_mode(self):
        feed = MultiQueryStream(QUERIES, on_match=lambda n, i: None)
        with pytest.raises(AttributeError):
            feed.results()
        assert feed.evaluate(XML) == {}

    def test_reset(self):
        feed = MultiQueryStream({"t": "//title"})
        feed.evaluate(XML)
        feed.reset()
        assert feed.evaluate("<catalog><title/></catalog>")["t"] == [2]
