"""Tests for XML-fragment output (repro.core.fragments, footnote 3)."""

import pytest

from repro.core.fragments import FragmentCapture, evaluate_fragments
from repro.stream.tokenizer import parse_string
from tests.conftest import chain_xml


class TestFragmentOutput:
    def test_simple_fragment(self):
        frags = evaluate_fragments("//b", "<a><b>text</b></a>")
        assert frags == ["<b>text</b>"]

    def test_fragment_with_structure(self):
        frags = evaluate_fragments("//b", "<a><b x='1'>t<c>u</c>v</b></a>")
        assert frags == ['<b x="1">t<c>u</c>v</b>']

    def test_leaf_fragments_self_close(self):
        assert evaluate_fragments("//b", "<a><b/></a>") == ["<b/>"]

    def test_predicate_decided_after_subtree(self):
        """The b subtree finishes long before d confirms it."""
        xml = "<a><b>kept</b><d/></a>"
        assert evaluate_fragments("//a[d]/b", xml) == ["<b>kept</b>"]

    def test_unconfirmed_candidates_produce_nothing(self):
        xml = "<a><b>dropped</b></a>"
        assert evaluate_fragments("//a[d]/b", xml) == []

    def test_multiple_fragments_in_order(self):
        xml = "<a><b>1</b><b>2</b></a>"
        assert evaluate_fragments("//b", xml) == ["<b>1</b>", "<b>2</b>"]

    def test_nested_candidates_both_captured(self):
        xml = "<a><b>out<b>in</b></b></a>"
        frags = evaluate_fragments("//b", xml)
        assert sorted(frags) == ["<b>in</b>", "<b>out<b>in</b></b>"]

    def test_text_escaped_in_fragments(self):
        frags = evaluate_fragments("//b", "<a><b>x &amp; y</b></a>")
        assert frags == ["<b>x &amp; y</b>"]

    def test_ids_accompany_fragments(self):
        capture = FragmentCapture("//b")
        capture.feed(parse_string("<a><b/><b/></a>"))
        assert [node_id for node_id, _ in capture.fragments] == [2, 3]

    def test_callback_mode(self):
        seen = []
        capture = FragmentCapture("//a[d]/b", on_fragment=lambda i, f: seen.append(f))
        capture.feed(parse_string("<a><b>hit</b><d/></a>"))
        assert seen == ["<b>hit</b>"]
        assert capture.fragments == []

    def test_evaluate_from_source(self, tmp_path):
        path = tmp_path / "d.xml"
        path.write_text("<a><b>f</b></a>")
        capture = FragmentCapture("//b")
        assert capture.evaluate(str(path)) == [(2, "<b>f</b>")]


class TestBufferGarbageCollection:
    def test_dead_candidates_are_freed_immediately(self):
        """A candidate whose predicates failed is dropped at the pop that
        kills its last stack entry, not at document end."""
        capture = FragmentCapture("//a[d]/b")
        events = list(parse_string("<r><a><b>x</b></a><a><b>y</b><d/></a></r>"))
        # Feed through the first </a> (a without d): its b must be freed.
        capture.feed(events[:6])
        assert capture.buffered_candidates == 0
        capture.feed(events[6:])
        assert [f for _i, f in capture.fragments] == ["<b>y</b>"]
        assert capture.buffered_candidates == 0

    def test_pending_candidates_stay_buffered(self):
        capture = FragmentCapture("//a[d]/b")
        events = list(parse_string("<a><b>x</b><d/></a>"))
        capture.feed(events[:4])  # b closed, a still open, d unseen
        assert capture.buffered_candidates == 1

    def test_no_buffering_without_candidates(self):
        capture = FragmentCapture("//zzz")
        capture.feed(parse_string(chain_xml(5)))
        assert capture.buffered_candidates == 0
        assert capture.fragments == []

    def test_all_buffers_freed_at_document_end(self):
        capture = FragmentCapture("//a[d]//b[e]//c")
        capture.feed(parse_string(chain_xml(6)))
        assert capture.buffered_candidates == 0
        assert len(capture.fragments) == 1


class TestRefcountTracker:
    def test_emitted_candidate_not_reported_dead(self):
        dead = []
        from repro.core.fragments import _RefCounts

        tracker = _RefCounts(dead.append, lambda i: None)
        tracker.created(1)
        tracker.retained(1)
        tracker.emitted([1])
        tracker.released([1])
        tracker.released([1])
        assert dead == []
        assert tracker.live == 0

    def test_unemitted_candidate_reported_dead_once(self):
        dead = []
        from repro.core.fragments import _RefCounts

        tracker = _RefCounts(dead.append, lambda i: None)
        tracker.created(5)
        tracker.retained(5)
        tracker.released([5])
        assert dead == []
        tracker.released([5])
        assert dead == [5]
