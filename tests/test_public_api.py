"""Public-surface tests: every exported name resolves and round-trips.

The ``__init__`` re-export lists are maintained by hand; these tests
keep them honest — every ``__all__`` entry must exist, and the
headline imports users copy from the README must keep working.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.multiq",
    "repro.xpath",
    "repro.stream",
    "repro.obs",
    "repro.baselines",
    "repro.datasets",
    "repro.bench",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), package
    missing = [name for name in module.__all__ if not hasattr(module, name)]
    assert not missing, f"{package}: __all__ entries missing: {missing}"


@pytest.mark.parametrize("package", PACKAGES)
def test_no_duplicate_all_entries(package):
    module = importlib.import_module(package)
    assert len(module.__all__) == len(set(module.__all__)), package


def test_top_level_readme_imports():
    import repro

    assert callable(repro.evaluate)
    assert repro.XPathStream and repro.TwigM and repro.compile_query
    assert isinstance(repro.__version__, str)

    from repro.core.fragments import evaluate_fragments  # noqa: F401
    from repro.core.multiquery import MultiQueryStream  # noqa: F401
    from repro.core.filtering import FilterSet  # noqa: F401
    from repro.multiq import MultiQueryEngine  # noqa: F401
    from repro.stream import resolve_namespaces  # noqa: F401


def test_error_types_exported_at_top_level():
    import repro

    for name in ("ReproError", "XPathSyntaxError", "XmlSyntaxError",
                 "UnsupportedQueryError", "StreamStateError"):
        assert hasattr(repro, name), name


def test_version_matches_pyproject():
    import re
    from pathlib import Path

    import repro

    # src/repro/__init__.py -> parents: [repro, src, repo-root]
    pyproject = Path(repro.__file__).resolve().parents[2] / "pyproject.toml"
    if not pyproject.exists():  # installed non-editable: skip
        pytest.skip("pyproject.toml not adjacent")
    match = re.search(r'^version = "([^"]+)"', pyproject.read_text(), re.M)
    assert match and match.group(1) == repro.__version__
