"""The asyncio serving loop, end to end over real sockets.

Every test spins a real :class:`SessionServer` on an ephemeral port and
drives it with :class:`ServeClient` (or raw frames where the client
library would paper over the behaviour under test).  The sharded
multi-process front is exercised by ``ci/serve_soak.py`` — these tests
stay single-process so the tier-1 suite is fast and deterministic.
"""

from __future__ import annotations

import asyncio
import json
import random

import pytest

from repro.core.processor import XPathStream
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.framing import (
    FrameDecoder,
    FrameType,
    encode_data,
    encode_frame,
    encode_json,
)
from repro.serve.server import SessionServer, shard_for_token, worker_port
from repro.serve.session import ServeConfig

XML = (
    "<site><people>"
    + "".join(
        f"<person><name>p{i}</name><age>{20 + i % 50}</age></person>"
        for i in range(300)
    )
    + "</people></site>"
)
QUERY = "//person/name"


def reference(query: str = QUERY, xml: str = XML) -> list[int]:
    stream = XPathStream(query)
    stream.feed_text(xml)
    return stream.close()


def chunked(xml: str, size: int) -> list[str]:
    return [xml[i:i + size] for i in range(0, len(xml), size)]


async def start_server(**overrides) -> SessionServer:
    defaults = dict(port=0, checkpoint_interval=2, retry_after=0.01,
                    idle_timeout=5.0)
    defaults.update(overrides)
    server = SessionServer(ServeConfig(**defaults))
    await server.start()
    return server


def run(coro):
    return asyncio.run(coro)


class TestHappyPath:
    def test_single_query_byte_identical(self):
        async def go():
            server = await start_server()
            client = ServeClient("127.0.0.1", server.port, {"q": QUERY})
            done = await client.run(chunked(XML, 777))
            await server.stop()
            return done, client

        done, client = run(go())
        assert client.result_ids("q") == reference()
        assert done["counts"] == {"q": len(reference())}

    def test_multi_query_byte_identical(self):
        queries = {"names": "//person/name", "ages": "//person/age"}

        async def go():
            server = await start_server()
            client = ServeClient("127.0.0.1", server.port, queries)
            await client.run(chunked(XML, 500))
            await server.stop()
            return client

        client = run(go())
        for name, query in queries.items():
            assert client.result_ids(name) == reference(query)

    def test_concurrent_sessions_are_isolated(self):
        async def go():
            server = await start_server()
            clients = [
                ServeClient("127.0.0.1", server.port, {"q": QUERY},
                            tenant=f"t{i % 3}")
                for i in range(12)
            ]
            await asyncio.gather(*(
                c.run(chunked(XML, 400 + 13 * i)) for i, c in enumerate(clients)
            ))
            await server.stop()
            return clients

        clients = run(go())
        expected = reference()
        for client in clients:
            assert client.result_ids("q") == expected


class TestFaults:
    def test_corruption_resumes_byte_identical(self):
        rng = random.Random(11)
        corrupted = [0]

        def mangle(data: bytes) -> bytes:
            if len(data) > 200 and rng.random() < 0.2:
                i = rng.randrange(20, len(data))
                corrupted[0] += 1
                return data[:i] + bytes([data[i] ^ 0xFF]) + data[i + 1:]
            return data

        async def go():
            server = await start_server(checkpoint_interval=1)
            client = ServeClient(
                "127.0.0.1", server.port, {"q": QUERY},
                rack_every=8, backoff_base=0.01, max_attempts=60,
                rng=random.Random(2), mangle=mangle,
            )
            done = await client.run(chunked(XML, 300))
            await server.stop()
            return done, client

        done, client = run(go())
        assert corrupted[0] > 0, "mangler never fired — test is vacuous"
        assert client.resumes > 0, "no resume was exercised"
        assert client.result_ids("q") == reference()

    def test_mid_stream_disconnect_resumes(self):
        """Kill the TCP connection partway, then resume on a new one."""
        async def go():
            server = await start_server(checkpoint_interval=1)
            client = ServeClient("127.0.0.1", server.port, {"q": QUERY},
                                 rack_every=4, backoff_base=0.01)
            chunks = chunked(XML, 250)

            async def saboteur():
                while client.last_seq < 30:
                    await asyncio.sleep(0.001)
                # yank every open connection out from under the client
                for conn in list(server._connections.values()):
                    conn.writer.transport.abort()

            sab = asyncio.ensure_future(saboteur())
            done = await client.run(chunks)
            sab.cancel()
            await server.stop()
            return done, client

        done, client = run(go())
        assert client.result_ids("q") == reference()
        assert client.attempts >= 2

    def test_worker_restart_resumes_from_spool(self, tmp_path):
        """A brand-new server over the same spool dir (a restarted worker)
        carries resumed sessions to byte-identical completion."""
        spool = str(tmp_path / "spool")

        async def go():
            config = dict(checkpoint_interval=1, spool_dir=spool)
            server = await start_server(**config)
            client = ServeClient("127.0.0.1", server.port, {"q": QUERY},
                                 rack_every=4, backoff_base=0.01)
            chunks = chunked(XML, 250)
            # feed only a prefix through server #1, then kill it cold
            prefix_task = asyncio.ensure_future(client.run(chunks))
            while client.last_seq < 20:
                await asyncio.sleep(0.001)
            prefix_task.cancel()
            try:
                await prefix_task
            except asyncio.CancelledError:
                pass
            await server.stop()
            # server #2: fresh memory, same spool, same port impossible —
            # point the client at the new address
            server2 = await start_server(**config)
            client.addr = ("127.0.0.1", server2.port)
            done = await client.run(chunks)
            await server2.stop()
            return done, client

        done, client = run(go())
        assert client.result_ids("q") == reference()
        assert client.resumes >= 1


class TestAdmissionAndErrors:
    def test_reject_over_sessions_carries_retry_after(self):
        async def go():
            server = await start_server(max_sessions=1)
            hold = ServeClient("127.0.0.1", server.port, {"q": QUERY})
            # occupy the only slot with an unfinished session
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            writer.write(encode_json(FrameType.HELLO, {"queries": {"q": QUERY}}))
            await writer.drain()
            # wait for its WELCOME so admission definitely happened
            decoder = FrameDecoder()
            frames = []
            while not frames:
                frames = decoder.feed(await reader.read(65536))
            assert frames[0].type == FrameType.WELCOME
            # second session must be refused
            refused = ServeClient("127.0.0.1", server.port, {"q": QUERY},
                                  max_attempts=2, backoff_base=0.01)
            with pytest.raises(ServeClientError, match="gave up"):
                await refused.run(chunked(XML, 500))
            writer.close()
            await server.stop()

        run(go())

    def test_bad_query_rejected_fatally(self):
        async def go():
            server = await start_server()
            client = ServeClient("127.0.0.1", server.port, {"bad": "//a[["})
            with pytest.raises(ServeClientError, match="bad_query"):
                await client.run(["<a/>"])
            await server.stop()

        run(go())

    def test_unknown_resume_token_rejected(self):
        async def go():
            server = await start_server()
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            writer.write(encode_json(FrameType.HELLO, {
                "resume": {"token": "feedfacefeedface", "seq": 0},
            }))
            await writer.drain()
            decoder = FrameDecoder()
            frames = []
            while not frames:
                frames = decoder.feed(await reader.read(65536))
            writer.close()
            await server.stop()
            return frames[0]

        frame = run(go())
        assert frame.type == FrameType.REJECT
        assert frame.json()["code"] == "unknown_session"

    def test_resource_limit_error_is_structured_and_fatal(self):
        from repro.stream.recovery import ResourceLimits

        async def go():
            server = await start_server(
                limits=ResourceLimits(max_text_length=8), checkpoint_interval=1,
            )
            client = ServeClient("127.0.0.1", server.port, {"q": QUERY},
                                 max_attempts=3, backoff_base=0.01)
            big_text = "<a>" + "x" * 100 + "</a>"
            with pytest.raises(ServeClientError) as info:
                await client.run([big_text])
            await server.stop()
            return info.value

        error = run(go())
        payload = error.payload
        assert payload["code"] == "resource_limit"
        assert payload["error"]["limit"] == "max_text_length"
        assert payload["error"]["configured"] == 8
        json.dumps(payload)  # reject frames must stay serializable

    def test_end_offset_mismatch_reported(self):
        async def go():
            server = await start_server()
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            writer.write(encode_json(FrameType.HELLO, {"queries": {"q": "//a"}}))
            writer.write(encode_data(0, "<a/>"))
            writer.write(encode_json(FrameType.END, {"offset": 999}))
            await writer.drain()
            decoder = FrameDecoder()
            seen = []
            while not any(f.type in (FrameType.ERROR, FrameType.DONE) for f in seen):
                data = await asyncio.wait_for(reader.read(65536), timeout=5)
                if not data:
                    break
                seen += decoder.feed(data)
            writer.close()
            await server.stop()
            return seen

        frames = run(go())
        errors = [f for f in frames if f.type == FrameType.ERROR]
        assert errors and errors[0].json()["code"] == "input_gap"


class TestShedding:
    def test_load_shed_sends_retry_hint_and_resumes(self):
        async def go():
            # Tiny queue budget: the second session's queued input trips
            # the global budget and the newest session is shed.
            server = await start_server(
                max_queued_chars=2000, checkpoint_interval=1, queue_depth=4,
            )
            survivor = ServeClient("127.0.0.1", server.port, {"q": QUERY},
                                   priority=5, backoff_base=0.01)
            victim = ServeClient("127.0.0.1", server.port, {"q": QUERY},
                                 priority=0, backoff_base=0.01,
                                 max_attempts=40)
            results = await asyncio.gather(
                survivor.run(chunked(XML, 400)),
                victim.run(chunked(XML, 400)),
            )
            shed_total = server.shedder.shed
            await server.stop()
            return results, survivor, victim, shed_total

        results, survivor, victim, shed_total = run(go())
        expected = reference()
        assert survivor.result_ids("q") == expected
        assert victim.result_ids("q") == expected  # shed, retried, finished
        assert shed_total >= 0  # bookkeeping stays consistent


class TestSharding:
    def test_worker_port_layout(self):
        config = ServeConfig(port=7600, shards=4)
        assert [worker_port(config, s) for s in range(4)] == [
            7601, 7602, 7603, 7604,
        ]

    def test_token_placement_is_deterministic(self):
        token = "abcdef0123456789"
        assert shard_for_token(token, 4) == shard_for_token(token, 4)
        spread = {shard_for_token(f"token{i}", 4) for i in range(64)}
        assert spread == {0, 1, 2, 3}  # all shards reachable


class TestMetrics:
    def test_served_session_updates_registry(self):
        from repro.obs.metrics import MetricsRegistry

        async def go():
            metrics = MetricsRegistry()
            config = ServeConfig(port=0, checkpoint_interval=2)
            server = SessionServer(config, metrics=metrics)
            await server.start()
            client = ServeClient("127.0.0.1", server.port, {"q": QUERY},
                                 tenant="acme", rack_every=16)
            await client.run(chunked(XML, 600))
            await server.stop()
            return metrics

        metrics = run(go())
        assert metrics.get("repro_serve_accepted_total").get(tenant="acme") == 1
        assert metrics.get("repro_serve_completed_total").get() == 1
        assert metrics.get("repro_serve_results_total").get() == len(reference())
        assert metrics.get("repro_serve_chars_total").get(tenant="acme") == len(XML)
        assert metrics.get("repro_serve_checkpoints_total").get() > 0
        # the per-tenant gauge returns to zero after the session detaches
        assert metrics.get("repro_serve_sessions").get(tenant="acme") == 0
        exposition = metrics.render_prometheus()
        assert "repro_serve_chunk_seconds" in exposition
