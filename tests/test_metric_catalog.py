"""The metric catalog must match the source tree exactly.

docs_check verifies documented metric families against the catalog
(:mod:`repro.obs.catalog`); this suite closes the loop by verifying the
catalog against reality, from both directions:

* every ``repro_*`` family literal in the source tree is catalogued —
  a new metric cannot ship uncatalogued (and hence slip past the docs
  gate when someone documents it with a typo);
* every catalogued family appears in the source — deleting a metric
  forces its catalog entry (and docs) to go too;
* the families the core instrumented paths actually *publish* at
  runtime are catalogued under their published names.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.obs.catalog import METRIC_FAMILIES, known_family
from repro.obs.machines import _COUNT_FIELDS

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"
NAME = re.compile(r"\brepro_[a-z0-9_]+\b")


def source_families() -> set[str]:
    """Every full repro_* family name the source tree mentions.

    Tokens ending in ``_`` are prefix constructions (f-strings, prose)
    and are expanded where the construction is known: the per-machine
    counters are built as ``repro_machine_{field}_total``.
    """
    found: set[str] = set()
    for path in SRC.rglob("*.py"):
        for token in NAME.findall(path.read_text(encoding="utf-8")):
            if not token.endswith("_"):
                found.add(token)
    found.update(f"repro_machine_{field}_total" for field, _ in _COUNT_FIELDS)
    return found


class TestCatalogMatchesSource:
    def test_every_source_family_is_catalogued(self):
        missing = source_families() - set(METRIC_FAMILIES)
        assert not missing, (
            f"metric families in source but not in repro.obs.catalog: "
            f"{sorted(missing)}"
        )

    def test_every_catalogued_family_exists_in_source(self):
        stale = set(METRIC_FAMILIES) - source_families()
        assert not stale, (
            f"catalogued metric families no longer in source: {sorted(stale)}"
        )

    def test_owner_modules_import(self):
        import importlib

        for module in sorted(set(METRIC_FAMILIES.values())):
            importlib.import_module(module)

    def test_prefix_lookup(self):
        assert known_family("repro_machine_")
        assert known_family("repro_latency_decision_lag_events")
        assert not known_family("repro_nonexistent_total")
        assert not known_family("repro_nonexistent_")


class TestPublishedFamiliesAreCatalogued:
    """Families that materialize in a real registry carry catalog names."""

    def test_stats_run_families(self):
        from repro.obs.stats import run_stats

        xml = "<r><a><x/><b>one</b></a><a><b>two</b></a></r>"
        run = run_stats("//a[x]//b", xml, lag=True, emission="default")
        snapshot = run.registry.snapshot()
        published = {name for name in snapshot if name.startswith("repro_")}
        unknown = {name for name in published if not known_family(name)}
        assert not unknown, f"published but uncatalogued: {sorted(unknown)}"
        # The lag instrumentation families must be among them.
        assert "repro_latency_decision_lag_events" in published
        assert "repro_latency_decision_lag_bytes" in published
        assert "repro_latency_results_total" in published
