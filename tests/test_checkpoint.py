"""Checkpoint/resume: snapshot at every boundary ≡ uninterrupted run."""

from __future__ import annotations

import json

import pytest

from repro import CheckpointError, XPathStream
from repro.core.processor import SNAPSHOT_VERSION

from tests.conftest import chain_xml

#: (query, document) pairs covering all three engines, predicates,
#: recursion, text values, and attributes.
CASES = [
    ("//a//b", chain_xml(3, with_predicates=False)),
    ("/a/b/c", "<a><b><c/><c/></b><b><c/></b></a>"),
    ("//a[d]//b[e]//c", chain_xml(3)),
    ("/a[b]/c", "<a><b/><c/><c/></a>"),
    ("//book[price < 30]//title",
     "<lib><book><price>25</price><title/></book>"
     "<book><price>40</price><title/></book></lib>"),
    ("//a[@k = 'v']/b", "<r><a k='v'><b/></a><a k='x'><b/></a></r>"),
]


def uninterrupted(query: str, document: str) -> list[int]:
    stream = XPathStream(query)
    stream.feed_text(document)
    return stream.close()


@pytest.mark.parametrize("query,document", CASES)
def test_checkpoint_at_every_char_boundary(query, document):
    """Suspend/resume at every feed boundary must be invisible.

    The document is fed one character at a time; after every character
    the stream is snapshotted, serialized through JSON (proving the
    capture is plain data), discarded, and restored — and the final
    match ids must be identical to an uninterrupted evaluation.
    """
    expected = uninterrupted(query, document)
    stream = XPathStream(query)
    for ch in document:
        stream.feed_text(ch)
        wire = json.dumps(stream.snapshot())
        stream = XPathStream.restore(json.loads(wire))
    assert stream.close() == expected


@pytest.mark.parametrize("query,document", CASES)
def test_single_midpoint_checkpoint(query, document):
    expected = uninterrupted(query, document)
    mid = len(document) // 2
    stream = XPathStream(query)
    stream.feed_text(document[:mid])
    resumed = XPathStream.restore(json.loads(json.dumps(stream.snapshot())))
    resumed.feed_text(document[mid:])
    assert resumed.close() == expected


def test_snapshot_is_json_serializable_end_to_end():
    stream = XPathStream("//a[d]//b")
    stream.feed_text(chain_xml(2)[:10])
    snap = stream.snapshot()
    assert snap["version"] == SNAPSHOT_VERSION
    assert json.loads(json.dumps(snap)) == snap


def test_version_mismatch_rejected():
    stream = XPathStream("//a")
    snap = stream.snapshot()
    snap["version"] = SNAPSHOT_VERSION + 1
    with pytest.raises(CheckpointError, match="version"):
        XPathStream.restore(snap)


def test_malformed_snapshot_rejected():
    with pytest.raises(CheckpointError):
        XPathStream.restore({"version": SNAPSHOT_VERSION, "query": "//a"})


def test_query_mismatch_on_machine_state():
    """A snapshot restored against a different machine shape is refused."""
    snap = XPathStream("//a[b][c]//d").snapshot()
    snap["query"] = "//a"
    with pytest.raises(CheckpointError):
        XPathStream.restore(snap)


def test_callback_sink_does_not_refire_after_restore():
    document = "<r><a/><a/><a/></r>"
    fired: list[int] = []
    stream = XPathStream("//a", on_match=fired.append)
    stream.feed_text("<r><a/><a/>")
    fired_before = list(fired)
    assert len(fired_before) == 2

    resumed_fired: list[int] = []
    resumed = XPathStream.restore(
        json.loads(json.dumps(stream.snapshot())), on_match=resumed_fired.append
    )
    resumed.feed_text("<a/></r>")
    resumed.close()
    # only the third <a> fires on the resumed stream
    assert len(resumed_fired) == 1
    assert set(resumed_fired).isdisjoint(fired_before)


def test_restore_preserves_policy_and_limits():
    from repro import RecoveryPolicy, ResourceLimits

    stream = XPathStream(
        "//a", policy="repair", limits=ResourceLimits(max_depth=9)
    )
    stream.feed_text("<r><a>")
    resumed = XPathStream.restore(stream.snapshot())
    assert resumed._policy is RecoveryPolicy.REPAIR
    assert resumed._limits.max_depth == 9
    # repair still applies after restore: truncated doc closes cleanly
    assert resumed.close() == [2]


def test_engine_choice_survives_restore():
    for query, engine in [("//a//b", "pathm"), ("/a[b]/c", "branchm"),
                          ("//a[b]//c", "twigm")]:
        stream = XPathStream(query)
        assert stream.engine_name == engine
        resumed = XPathStream.restore(stream.snapshot())
        assert resumed.engine_name == engine


def test_checkpoint_with_lenient_recovery_mid_damage():
    """Snapshot taken while the tokenizer is mid-recovery still resumes."""
    expected_stream = XPathStream("//b", policy="skip")
    expected_stream.feed_text("<a><1bad/><b/><b/></a>")
    expected = expected_stream.close()

    stream = XPathStream("//b", policy="skip")
    for ch in "<a><1bad/><b/><b/></a>":
        stream.feed_text(ch)
        stream = XPathStream.restore(json.loads(json.dumps(stream.snapshot())))
    assert stream.close() == expected
