"""``python -m repro store`` end to end: ingest | replay | index | compact."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as repro_main
from repro.core.processor import XPathStream
from repro.store.cli import main as store_main

DOC = (
    "<catalog>"
    + "".join(
        f"<book><title>T{i}</title><price>{10 + i}</price></book>"
        for i in range(30)
    )
    + "<misc>" + "".join(f"<x><y>z{i}</y></x>" for i in range(5)) + "</misc>"
    + "</catalog>"
)


@pytest.fixture
def doc_file(tmp_path):
    path = tmp_path / "doc.xml"
    path.write_text(DOC)
    return str(path)


@pytest.fixture
def query_file(tmp_path):
    path = tmp_path / "queries.txt"
    path.write_text("titles\t//book/title\nrare\t//misc//y\n")
    return str(path)


def run(capsys, *argv) -> "tuple[int, str, str]":
    code = store_main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestIngest:
    def test_plain(self, tmp_path, doc_file, capsys):
        code, out, _ = run(
            capsys, "ingest", doc_file, str(tmp_path / "s"), "--sync", "none"
        )
        assert code == 0
        assert "ingested" in out

    def test_json_with_queries(self, tmp_path, doc_file, query_file, capsys):
        code, out, _ = run(
            capsys, "ingest", doc_file, str(tmp_path / "s"),
            "--queries", query_file, "--checkpoint-interval", "40",
            "--segment-events", "32", "--sync", "none", "--json",
        )
        assert code == 0
        summary = json.loads(out)
        assert summary["events"] > 0
        assert len(summary["checkpoints"]) >= 2
        assert summary["results"] == {"titles": 30, "rare": 5}

    def test_missing_source(self, tmp_path, capsys):
        code, _, err = run(capsys, "ingest", "/no/such.xml", str(tmp_path / "s"))
        assert code == 2
        assert "repro store:" in err


class TestReplay:
    @pytest.fixture
    def store(self, tmp_path, doc_file, query_file, capsys):
        run(capsys, "ingest", doc_file, str(tmp_path / "s"),
            "--queries", query_file, "--checkpoint-interval", "40",
            "--segment-events", "32", "--sync", "none")
        return str(tmp_path / "s")

    def test_single_query(self, store, capsys):
        code, out, _ = run(capsys, "replay", store, "--query", "//misc//y")
        assert code == 0
        expected = XPathStream("//misc//y").evaluate(DOC)
        assert [int(line) for line in out.splitlines()] == expected

    def test_query_file_output(self, store, query_file, capsys):
        code, out, _ = run(capsys, "replay", store, "--queries", query_file)
        assert code == 0
        lines = [line.split("\t") for line in out.splitlines()]
        assert sum(1 for name, _ in lines if name == "titles") == 30
        assert sum(1 for name, _ in lines if name == "rare") == 5

    def test_from_checkpoint_resumes_embedded_engine(self, store, capsys):
        code, list_out, _ = run(capsys, "index", store, "--json")
        checkpoints = [
            ck["id"]
            for seg in json.loads(list_out)["segments"]
            for ck in seg["checkpoints"]
        ]
        assert checkpoints
        for ck in checkpoints:
            code, out, _ = run(capsys, "replay", store, "--from-checkpoint", str(ck))
            assert code == 0
            lines = sorted(out.splitlines())
            reference_code, reference_out, _ = run(
                capsys, "replay", store, "--query", "//book/title"
            )
            titles = {f"titles\t{i}" for i in reference_out.splitlines()}
            assert titles <= set(lines), f"checkpoint {ck} lost results"

    def test_stats_and_no_skip(self, store, capsys):
        code, out_skip, err = run(
            capsys, "replay", store, "--query", "//misc//y", "--stats"
        )
        assert code == 0
        assert "skipped" in err
        code, out_no, _ = run(
            capsys, "replay", store, "--query", "//misc//y", "--no-skip"
        )
        assert out_skip == out_no

    def test_hostile_limits_flag(self, store, capsys):
        code, _, err = run(
            capsys, "replay", store, "--query", "//book/title", "--max-events", "5"
        )
        assert code == 2
        assert "max_total_events" in err

    def test_json(self, store, capsys):
        code, out, _ = run(
            capsys, "replay", store, "--query", "//misc//y", "--json"
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["results"] == XPathStream("//misc//y").evaluate(DOC)
        assert payload["stats"]["segments_total"] > 0


class TestIndexAndCompact:
    @pytest.fixture
    def store(self, tmp_path, doc_file, capsys):
        run(capsys, "ingest", doc_file, str(tmp_path / "s"),
            "--checkpoint-interval", "40", "--segment-events", "32",
            "--sync", "none")
        return str(tmp_path / "s")

    def test_index_plain_and_verdicts(self, store, capsys):
        code, out, _ = run(capsys, "index", store)
        assert code == 0
        assert "seg-00000001.log" in out
        code, out, _ = run(capsys, "index", store, "--query", "//misc//y")
        assert "SKIP" in out and "skippable:" in out

    def test_index_json_shape(self, store, capsys):
        code, out, _ = run(capsys, "index", store, "--query", "//misc//y", "--json")
        report = json.loads(out)
        assert report["skip_ratio"] > 0
        for segment in report["segments"]:
            assert {"file", "tags", "has_text", "skippable"} <= set(segment)

    def test_compact_then_replay(self, store, capsys):
        _, out, _ = run(capsys, "index", store, "--json")
        checkpoints = [
            ck["id"]
            for seg in json.loads(out)["segments"]
            for ck in seg["checkpoints"]
        ]
        target = checkpoints[-1]
        code, out, _ = run(
            capsys, "compact", store, "--before-checkpoint", str(target),
            "--sync", "none", "--json",
        )
        assert code == 0
        summary = json.loads(out)
        assert summary["segments_dropped"] >= 1
        # Pre-compaction history is gone; cold replay now errors...
        code, _, err = run(capsys, "replay", store, "--query", "//book/title")
        assert code == 2 and "compacted" in err
        # ...but the checkpoint fast path still works.
        code, _, _ = run(capsys, "replay", store, "--from-checkpoint", str(target))
        assert code in (0, 1, 2)  # engineless checkpoint w/o target errors cleanly

    def test_compact_unknown_checkpoint(self, store, capsys):
        code, _, err = run(capsys, "compact", store, "--before-checkpoint", "999")
        assert code == 2
        assert "999" in err


class TestDispatch:
    def test_repro_main_routes_store(self, tmp_path, doc_file, capsys):
        code = repro_main(
            ["store", "ingest", doc_file, str(tmp_path / "s"), "--sync", "none"]
        )
        assert code == 0
        assert "ingested" in capsys.readouterr().out

    def test_bad_store_dir(self, capsys):
        code, _, err = run(capsys, "replay", "/no/such/store", "--query", "//a")
        assert code == 2
        assert "repro store:" in err
