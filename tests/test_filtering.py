"""Tests for shared-automaton query filtering (repro.core.filtering)."""

import pytest

from repro.core.filtering import FilterSet, PathFilterSet
from repro.core.pathm import evaluate_pathm
from repro.core.processor import XPathStream
from repro.errors import UnsupportedQueryError
from repro.stream.tokenizer import parse_string

XML = (
    "<site>"
    "<people><person><name>Ana</name></person>"
    "<person><name>Bo</name></person></people>"
    "<items><item id='1'><name>vase</name><price>30</price></item>"
    "<item><name>map</name></item></items>"
    "</site>"
)

PATH_QUERIES = {
    "names": "//name",
    "people-names": "//person/name",
    "items": "//items//item",
    "rooted": "/site/people/person",
    "wild": "//items/*/name",
}


class TestPathFilterSet:
    def test_agrees_with_individual_pathm_runs(self):
        events = list(parse_string(XML))
        shared = PathFilterSet(PATH_QUERIES).run(iter(events))
        for name, query in PATH_QUERIES.items():
            alone = evaluate_pathm(query, iter(events))
            assert shared[name] == alone, name

    def test_on_match_streams(self):
        seen = []
        PathFilterSet({"names": "//name"}).run(
            parse_string(XML), on_match=lambda name, nid: seen.append((name, nid))
        )
        assert seen and all(name == "names" for name, _ in seen)

    def test_predicate_queries_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            PathFilterSet({"bad": "//a[b]"})

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            PathFilterSet({})

    def test_prefix_sharing_bounds_states(self):
        """100 queries sharing structure need far fewer than 100x the
        states of one query — the YFilter effect."""
        single = PathFilterSet({"q": "//person/name"})
        single.run(parse_string(XML))
        lone_states = single.state_count

        many_queries = {f"q{i}": "//person/name" for i in range(50)}
        many_queries.update({f"p{i}": "//items//item" for i in range(50)})
        shared = PathFilterSet(many_queries)
        shared.run(parse_string(XML))
        assert shared.state_count < 10 * lone_states

    def test_matches_on_recursive_data(self):
        xml = "<a><a><b/></a><b/></a>"
        result = PathFilterSet({"ab": "//a//b"}).run(parse_string(xml))
        assert result["ab"] == [3, 4]


class TestFilterSet:
    MIXED = {
        "names": "//name",
        "cheap": "//item[price = 30]/name",
        "with-id": "//item[@id]/name",
    }

    def test_hybrid_routing(self):
        routes = FilterSet(self.MIXED).routing()
        assert routes["names"] == "shared-dfa"
        assert routes["cheap"] == "twigm"
        assert routes["with-id"] == "twigm"

    def test_results_match_individual_runs(self):
        events = list(parse_string(XML))
        combined = FilterSet(self.MIXED).evaluate(iter(events))
        for name, query in self.MIXED.items():
            alone = XPathStream(query).evaluate(iter(events))
            assert sorted(combined[name]) == sorted(alone), name

    def test_all_path_queries_use_the_shared_dfa(self):
        filters = FilterSet(PATH_QUERIES)
        assert set(filters.routing().values()) == {"shared-dfa"}
        assert filters.shared_state_count >= 1

    def test_callback_mode(self):
        seen = []
        filters = FilterSet(self.MIXED, on_match=lambda n, i: seen.append(n))
        filters.evaluate(XML)
        assert "names" in seen and "cheap" in seen

    def test_incremental_text_feed(self):
        filters = FilterSet(self.MIXED)
        for index in range(0, len(XML), 13):
            filters.feed_text(XML[index:index + 13])
        results = filters.close()
        assert results["names"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FilterSet({})

    def test_no_path_queries_still_works(self):
        filters = FilterSet({"cheap": "//item[price = 30]/name"})
        assert filters.shared_state_count == 0
        results = filters.evaluate(XML)
        assert len(results["cheap"]) == 1
