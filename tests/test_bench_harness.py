"""Tests for the measurement protocol (repro.bench.harness) and report
rendering (repro.bench.report)."""

import pytest

from repro.bench.harness import (
    Cell,
    Grid,
    MemoryUse,
    Timing,
    measure_memory,
    measure_time,
    trimmed_mean,
)
from repro.bench.report import (
    format_bytes,
    format_seconds,
    render_dict_rows,
    render_grid,
    render_table,
)


class TestTrimmedMean:
    def test_drops_min_and_max(self):
        """The paper's protocol: discard extremes, average the rest."""
        assert trimmed_mean([1.0, 2.0, 3.0, 4.0, 100.0]) == 3.0

    def test_small_samples_untrimmed(self):
        assert trimmed_mean([2.0, 4.0]) == 3.0
        assert trimmed_mean([5.0]) == 5.0

    def test_three_samples(self):
        assert trimmed_mean([1.0, 2.0, 9.0]) == 2.0


class TestMeasurement:
    def test_measure_time_runs_n_times(self):
        calls = []

        def run():
            calls.append(1)
            return [1, 2]

        timing = measure_time(run, repeats=4)
        assert len(calls) == 4
        assert len(timing.runs) == 4
        assert timing.result_count == 2
        assert timing.mean >= 0
        assert timing.best <= max(timing.runs)

    def test_measure_memory_sees_allocations(self):
        def run():
            block = [0] * 200_000
            return [len(block)]

        usage = measure_memory(run)
        assert usage.peak_bytes > 500_000  # a 200k-int list is ≥ 1.6MB
        assert usage.result_count == 1

    def test_measure_memory_small_for_small_runs(self):
        small = measure_memory(lambda: [1])
        big = measure_memory(lambda: [len([0] * 500_000)])
        assert small.peak_bytes < big.peak_bytes

    def test_peak_mb(self):
        assert MemoryUse(2 * 1024 * 1024, 0).peak_mb == 2.0


class TestGrid:
    def test_put_and_get(self):
        grid = Grid(title="t")
        cell = Cell(supported=True, timing=Timing(1.0, (1.0,), 3))
        grid.put("Q1", "TwigM", cell)
        assert grid.get("Q1", "TwigM") is cell
        assert grid.row_labels == ["Q1"]
        assert grid.column_labels == ["TwigM"]

    def test_missing_cell(self):
        assert Grid(title="t").get("x", "y") is None

    def test_unsupported_marker(self):
        assert not Cell.unsupported().supported


class TestRendering:
    def test_format_seconds(self):
        assert format_seconds(0.0000005) == "0µs" or "µs" in format_seconds(0.0000005)
        assert format_seconds(0.5) == "500.0ms"
        assert format_seconds(2.5) == "2.50s"

    def test_format_bytes(self):
        assert format_bytes(512) == "1KB" or "KB" in format_bytes(512)
        assert format_bytes(3 * 1024 * 1024) == "3.00MB"

    def test_render_table_alignment(self):
        table = render_table(["col", "x"], [["a", "1"], ["bb", "22"]])
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].startswith("col")

    def test_render_grid_unsupported_cells(self):
        grid = Grid(title="fig")
        grid.put("Q1", "A", Cell(supported=True, timing=Timing(0.5, (0.5,), 7)))
        grid.put("Q1", "B", Cell.unsupported())
        text = render_grid(grid, "time")
        assert "—" in text
        assert "500.0ms" in text

    def test_render_grid_memory(self):
        grid = Grid(title="fig")
        grid.put("Q1", "A", Cell(supported=True, memory=MemoryUse(1024 * 1024, 7)))
        assert "1.00MB" in render_grid(grid, "memory")

    def test_render_grid_counts(self):
        grid = Grid(title="fig")
        grid.put("Q1", "A", Cell(supported=True, timing=Timing(0.5, (0.5,), 7)))
        assert "7" in render_grid(grid, "count")

    def test_render_grid_error_cells(self):
        grid = Grid(title="fig")
        grid.put("Q1", "A", Cell(supported=True, error="out of memory"))
        assert "err" in render_grid(grid, "time")

    def test_render_dict_rows(self):
        text = render_dict_rows("T", [{"a": 1, "b": 2}])
        assert text.startswith("T\n")
        assert "1" in text

    def test_render_dict_rows_empty(self):
        assert "no rows" in render_dict_rows("T", [])
