"""Tests for query unparsing (repro.xpath.unparse)."""

import pytest
from hypothesis import given, settings

from repro.baselines.navigational import NavigationalDomEngine
from repro.stream.tokenizer import parse_string
from repro.xpath.querytree import compile_query
from repro.xpath.unparse import canonical_query, unparse_query
from tests.test_equivalence_properties import xml_trees, xpath_queries


class TestCanonicalForms:
    @pytest.mark.parametrize(
        "query, canonical",
        [
            ("/a/b", "/a/b"),
            ("//a//b", "//a//b"),
            ("//a/*/c", "//a/*/c"),
            ("//a[b]", "//a[b]"),
            ("//a[b/c]", "//a[b[c]]"),
            ("//a[.//b]", "//a[.//b]"),
            ("//a[b and c]", "//a[b][c]"),
            ("//a[@id]", "//a[@id]"),
            ("//a[@id = '7']", "//a[@id = '7']"),
            ("//a[b/@k]", "//a[b[@k]]"),
            # Value tests on a predicate path render in nested form too.
            ("//a[price < 30]", "//a[price[. < 30]]"),
            ("//a[price < 30.5]", "//a[price[. < 30.5]]"),
            ("//a[. = 'x']", "//a[. = 'x']"),
            ("//a[text() = 'x']", "//a[. = 'x']"),
            ("//a[b or c]", "//a[b or c]"),
            ("//a[not(b)]", "//a[not(b)]"),
            ("//a[(b or c) and d]", "//a[(b or c) and d]"),
            ("//a[b or c and d]", "//a[b or (c and d)]"),
            ("//a[not(b or c)]", "//a[not(b or c)]"),
        ],
    )
    def test_canonical_text(self, query, canonical):
        assert canonical_query(query) == canonical

    def test_canonical_is_idempotent(self):
        for query in ("//a[b/c][d]", "//a[b or not(c)]/e", "/x/*//y[@k]"):
            once = canonical_query(query)
            assert canonical_query(once) == once


class TestRoundTripSemantics:
    ORACLE = NavigationalDomEngine()

    DOCUMENTS = [
        "<a><b><c/></b><d/></a>",
        "<a k='1'><b/><a><c/><b/></a></a>",
        "<x><y>1</y><z>2</z></x>",
    ]

    @pytest.mark.parametrize(
        "query",
        [
            "//a[b/c]/d",
            "//a[.//c][@k]/b",
            "//a[b or c]/d",
            "//a[not(b)]//c",
            "/a/*[c]",
            "//y[. = '1']",
        ],
    )
    def test_compile_unparse_compile_is_equivalent(self, query):
        original = compile_query(query)
        rebuilt = compile_query(unparse_query(original))
        for xml in self.DOCUMENTS:
            events = list(parse_string(xml))
            first = self.ORACLE.run(original, iter(events))
            second = self.ORACLE.run(rebuilt, iter(events))
            assert first == second, (query, xml)

    @settings(max_examples=150, deadline=None)
    @given(query=xpath_queries(), xml=xml_trees())
    def test_round_trip_property(self, query, xml):
        original = compile_query(query)
        rebuilt = compile_query(unparse_query(original))
        events = list(parse_string(xml))
        assert self.ORACLE.run(original, iter(events)) == self.ORACLE.run(
            rebuilt, iter(events)
        )

    def test_subtree_unparse(self):
        tree = compile_query("//a[x]/b")
        assert unparse_query(tree.return_node) == "/b"
