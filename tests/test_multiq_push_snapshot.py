"""Multi-query snapshots taken mid-chunk during a *push* feed.

The pull-path snapshot suite (test_multiq_snapshot.py) checkpoints
between events; serving sessions checkpoint between ``feed_text_push``
calls, with the tokenizer frequently mid-construct (a chunk boundary
inside a tag, an entity, a CDATA section).  These tests pin down that:

* a snapshot taken at any push-chunk boundary restores to an engine
  whose remaining-stream results are byte-identical;
* the snapshot survives JSON (the serving checkpoint spool is JSON on
  disk);
* restore works in a **fresh process** with no shared state beyond the
  blob (the sharded server's workers restore sessions spooled by a
  SIGKILLed predecessor).
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.multiq.engine import MultiQueryEngine

SRC = str(Path(__file__).resolve().parent.parent / "src")

QUERIES = {
    "sellers": "//auction/seller",
    "prices": "//auction//price",
    "deep": "//site//auction[seller]/price",
}

DOCUMENT = (
    "<site><auctions>"
    + "".join(
        f"<auction><seller>s{i} &amp; co</seller>"
        f"<bids><price>{i}</price></bids></auction>"
        for i in range(30)
    )
    + "<notes><![CDATA[raw <stuff>]]></notes></auctions></site>"
)


def uninterrupted() -> dict:
    engine = MultiQueryEngine(QUERIES)
    engine.feed_text_push(DOCUMENT)
    return engine.close()


def chunk_at(cut: int) -> tuple[str, str]:
    return DOCUMENT[:cut], DOCUMENT[cut:]


# Cuts chosen to land mid-tag, mid-entity, mid-CDATA, and at clean
# boundaries — the tokenizer must carry each across the snapshot.
INTERESTING_CUTS = [
    DOCUMENT.index("<seller>") + 4,          # inside a start tag name
    DOCUMENT.index("&amp;") + 2,             # inside an entity reference
    DOCUMENT.index("<![CDATA[") + 11,        # inside a CDATA section
    DOCUMENT.index("</auction>") + 5,        # inside an end tag
    len(DOCUMENT) // 2,                      # wherever that lands
    DOCUMENT.index("<bids>"),                # clean boundary before a tag
]


class TestMidChunkPushSnapshot:
    @pytest.mark.parametrize("cut", INTERESTING_CUTS)
    def test_snapshot_mid_construct_is_exact(self, cut):
        expected = uninterrupted()
        head, tail = chunk_at(cut)
        engine = MultiQueryEngine(QUERIES)
        engine.feed_text_push(head)
        blob = json.loads(json.dumps(engine.snapshot()))
        restored = MultiQueryEngine.restore(blob)
        restored.feed_text_push(tail)
        assert restored.close() == expected, f"cut at {cut}"

    def test_snapshot_every_small_chunk_boundary(self):
        expected = uninterrupted()
        size = 37
        engine = MultiQueryEngine(QUERIES)
        position = 0
        while position < len(DOCUMENT):
            engine.feed_text_push(DOCUMENT[position:position + size])
            position += size
            # checkpoint + restore at EVERY boundary, continuing on the
            # restored engine — compounding any state loss
            engine = MultiQueryEngine.restore(
                json.loads(json.dumps(engine.snapshot()))
            )
        assert engine.close() == expected

    def test_callbacks_rebind_and_dedup_across_push_snapshot(self):
        """Results delivered before the snapshot must not re-fire after
        restore, even though the engine replays nothing."""
        fired: list = []
        engine = MultiQueryEngine(
            QUERIES, on_match=lambda name, node_id: fired.append((name, node_id))
        )
        cut = INTERESTING_CUTS[0]
        head, tail = chunk_at(cut)
        engine.feed_text_push(head)
        before = list(fired)
        blob = json.loads(json.dumps(engine.snapshot()))
        restored_fired: list = []
        restored = MultiQueryEngine.restore(
            blob, on_match=lambda name, node_id: restored_fired.append((name, node_id))
        )
        restored.feed_text_push(tail)
        restored.close()
        expected = uninterrupted()
        combined: dict = {name: [] for name in QUERIES}
        for name, node_id in before + restored_fired:
            combined[name].append(node_id)
        assert combined == expected


class TestFreshProcessRestore:
    def test_restore_in_subprocess_is_byte_identical(self, tmp_path):
        """Snapshot here, restore in a brand-new interpreter — the blob
        alone must carry everything (no module state, no closures)."""
        expected = uninterrupted()
        cut = DOCUMENT.index("&amp;") + 2  # mid-entity, the nastiest cut
        head, tail = chunk_at(cut)
        engine = MultiQueryEngine(QUERIES)
        engine.feed_text_push(head)
        blob_path = tmp_path / "checkpoint.json"
        blob_path.write_text(json.dumps(engine.snapshot()), encoding="utf-8")
        script = (
            "import json, sys\n"
            "from repro.multiq.engine import MultiQueryEngine\n"
            "blob = json.loads(open(sys.argv[1], encoding='utf-8').read())\n"
            "engine = MultiQueryEngine.restore(blob)\n"
            "engine.feed_text_push(sys.stdin.read())\n"
            "print(json.dumps(engine.close()))\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", script, str(blob_path)],
            input=tail, capture_output=True, text=True,
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        )
        assert completed.returncode == 0, completed.stderr
        assert json.loads(completed.stdout) == expected
