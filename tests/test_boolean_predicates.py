"""Tests for the boolean-connective predicate extension (or / not / parens).

The paper's fragment is conjunctive; this library extends predicates to
arbitrary boolean combinations (DESIGN.md §7).  Purely conjunctive
queries must keep using the bitmask fast path (condition is None).
"""

import pytest

from repro.baselines.enumerative import EnumerativeDomEngine
from repro.baselines.explicit import ExplicitMatchEngine
from repro.baselines.navigational import NavigationalDomEngine
from repro.core.branchm import BranchM
from repro.core.machine import build_machine
from repro.core.processor import XPathStream, evaluate
from repro.core.twigm import TwigM
from repro.errors import UnsupportedQueryError, XPathSyntaxError
from repro.stream.tokenizer import parse_string
from repro.xpath.querytree import (
    AndCond,
    AttrRef,
    ChildRef,
    NotCond,
    OrCond,
    ValueRef,
    compile_query,
    condition_leaves,
    evaluate_condition_3v,
)


class TestParsing:
    def test_or(self):
        tree = compile_query("//a[b or c]")
        assert isinstance(tree.root.condition, OrCond)

    def test_not(self):
        tree = compile_query("//a[not(b)]")
        assert isinstance(tree.root.condition, NotCond)

    def test_nested_boolean_structure(self):
        tree = compile_query("//a[(b or c) and not(@x)]")
        condition = tree.root.condition
        assert isinstance(condition, AndCond)
        assert isinstance(condition.parts[0], OrCond)
        assert isinstance(condition.parts[1], NotCond)

    def test_precedence_and_binds_tighter_than_or(self):
        tree = compile_query("//a[b and c or d]")
        condition = tree.root.condition
        assert isinstance(condition, OrCond)
        assert isinstance(condition.parts[0], AndCond)

    def test_multiple_brackets_with_boolean_one(self):
        """[p][q or r] is AND(p, OR(q, r))."""
        tree = compile_query("//a[p][q or r]")
        condition = tree.root.condition
        assert isinstance(condition, AndCond)
        assert isinstance(condition.parts[0], ChildRef)
        assert isinstance(condition.parts[1], OrCond)

    def test_leaf_kinds(self):
        tree = compile_query("//a[b or @x or . = '1']")
        leaves = list(condition_leaves(tree.root.condition))
        kinds = sorted(type(leaf).__name__ for leaf in leaves)
        assert kinds == ["AttrRef", "ChildRef", "ValueRef"]

    def test_not_requires_parentheses(self):
        # A bare name 'not' stays a name test.
        tree = compile_query("//a[not]")
        assert tree.root.condition is None
        assert tree.root.children[0].name == "not"

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(XPathSyntaxError):
            compile_query("//a[not(b]")
        with pytest.raises(XPathSyntaxError):
            compile_query("//a[(b or c]")

    def test_conjunctive_queries_keep_fast_path(self):
        for query in ("//a[b]", "//a[b][c]", "//a[b and c]", "//a[@x][. = '1']"):
            tree = compile_query(query)
            assert all(node.condition is None for node in tree.iter_nodes()), query
            assert not tree.has_boolean_connectives()

    def test_str_round_trip(self):
        for query in ("//a[b or c]/d", "//a[not(b)]", "//a[(b or c) and d]"):
            assert str(compile_query(query).source) == query


class TestEvaluation:
    CASES = [
        ("//a[b or c]/t",
         "<r><a><b/><t/></a><a><c/><t/></a><a><x/><t/></a></r>", [4, 7]),
        ("//a[not(b)]/t",
         "<r><a><b/><t/></a><a><t/></a></r>", [6]),
        ("//a[not(@x)]/t",
         "<r><a x='1'><t/></a><a><t/></a></r>", [5]),
        ("//a[b or @k = '1']/t",
         "<r><a k='1'><t/></a><a><b/><t/></a><a k='2'><t/></a></r>", [3, 6]),
        ("//a[not(p = 10)]/t",
         "<r><a><p>10</p><t/></a><a><p>11</p><t/></a></r>", [7]),
        ("//a[b[x or y]]/t",
         "<r><a><b><x/></b><t/></a><a><b/><t/></a></r>", [5]),
        ("//a[not(b) or c]/t",
         "<r><a><b/><c/><t/></a><a><b/><t/></a><a><t/></a></r>", [5, 10]),
        ("//a[not(b//c)]/t",
         "<r><a><b><x><c/></x></b><t/></a><a><b/><t/></a></r>", [9]),
        ("//a[. = 'x' or . = 'y']",
         "<r><a>x</a><a>y</a><a>z</a></r>", [2, 3]),
    ]

    @pytest.mark.parametrize("query, xml, expected", CASES)
    def test_twigm_results(self, query, xml, expected):
        assert sorted(evaluate(query, xml)) == expected

    @pytest.mark.parametrize("query, xml, expected", CASES)
    def test_oracle_agrees(self, query, xml, expected):
        oracle = NavigationalDomEngine()
        assert sorted(oracle.run(query, parse_string(xml))) == expected

    @pytest.mark.parametrize("query, xml, expected", CASES)
    def test_enumerative_agrees(self, query, xml, expected):
        engine = EnumerativeDomEngine()
        assert sorted(engine.run(query, parse_string(xml))) == expected

    def test_or_on_recursive_data(self):
        xml = "<a><a><b/><t/></a><c/><t/></a>"
        assert sorted(evaluate("//a[b or c]/t", xml)) == [4, 6]

    def test_not_with_descendant_axes(self):
        xml = "<r><a><t/></a><a><x><d/></x><t/></a></r>"
        assert sorted(evaluate("//a[not(.//d)]/t", xml)) == [3]


class TestDispatchAndGating:
    def test_boolean_queries_run_on_twigm(self):
        assert XPathStream("/a[b or c]/d").engine_name == "twigm"
        assert XPathStream("//a[not(b)]").engine_name == "twigm"

    def test_branchm_rejects_connectives(self):
        with pytest.raises(UnsupportedQueryError, match="or/not"):
            BranchM("/a[b or c]/d")

    def test_explicit_engine_rejects_connectives(self):
        assert not ExplicitMatchEngine().supports("//a[b or c]/d")

    def test_machine_compiles_condition(self):
        machine = build_machine(compile_query("//a[b or c]/t"))
        assert machine.root.compiled_condition is not None
        assert machine.root.complete_mask == 0b111  # unused on this node


class TestPushTimePruning:
    def test_impossible_attribute_condition_prunes_entry(self):
        """[@x and (b or c)] with no @x can never be satisfied: no entry."""
        machine = TwigM("//a[@x and (b or c)]/t")
        events = list(parse_string("<r><a><b/><t/></a></r>"))
        machine.feed(events[:2])
        assert machine.total_stack_entries() == 0

    def test_possible_condition_keeps_entry(self):
        machine = TwigM("//a[@x or b]/t")
        events = list(parse_string("<r><a><b/><t/></a></r>"))
        machine.feed(events[:2])  # no @x, but b may still arrive
        assert machine.total_stack_entries() == 1

    def test_negated_attribute_prunes_when_present(self):
        machine = TwigM("//a[not(@x)]/t")
        events = list(parse_string("<r><a x='1'><t/></a></r>"))
        machine.feed(events[:2])
        assert machine.total_stack_entries() == 0


class TestThreeValuedEvaluation:
    def test_unknowns_propagate(self):
        tree = compile_query("//a[b or c]")
        condition = tree.root.condition
        assert evaluate_condition_3v(condition, lambda ref: None) is None

    def test_or_short_circuits_true(self):
        tree = compile_query("//a[@x or b]")
        condition = tree.root.condition

        def leaf(ref):
            return True if isinstance(ref, AttrRef) else None

        assert evaluate_condition_3v(condition, leaf) is True

    def test_and_short_circuits_false(self):
        # A conjunction only reaches the condition path when a connective
        # is present somewhere; (b or c) provides the unknown side.
        tree = compile_query("//a[@x and (b or c)]")
        condition = tree.root.condition

        def leaf(ref):
            return False if isinstance(ref, AttrRef) else None

        assert evaluate_condition_3v(condition, leaf) is False

    def test_not_inverts(self):
        tree = compile_query("//a[not(@x)]")
        assert evaluate_condition_3v(tree.root.condition, lambda r: True) is False
