"""Docs stay truthful: mirrors ``ci/docs_check.py`` inside the suite.

The CI gate script is imported (not reimplemented) so the suite and CI
can never disagree about what counts as a broken link or a dangling
API reference.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def _load_docs_check():
    spec = importlib.util.spec_from_file_location(
        "docs_check", ROOT / "ci" / "docs_check.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


docs_check = _load_docs_check()


@pytest.mark.parametrize(
    "path", docs_check.doc_files(ROOT), ids=lambda p: str(p.relative_to(ROOT))
)
def test_relative_links_resolve(path):
    assert docs_check.check_links(path, ROOT) == []


@pytest.mark.parametrize(
    "path", docs_check.doc_files(ROOT), ids=lambda p: str(p.relative_to(ROOT))
)
def test_dotted_api_references_resolve(path):
    assert docs_check.check_symbols(path, ROOT) == []


def test_checker_spots_a_broken_link(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("see [missing](./nope.md) and [ok](doc.md)",
                   encoding="utf-8")
    failures = docs_check.check_links(doc, tmp_path)
    assert len(failures) == 1 and "nope.md" in failures[0]


def test_checker_spots_a_dangling_symbol(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("use `repro.no_such_module.Thing`", encoding="utf-8")
    failures = docs_check.check_symbols(doc, tmp_path)
    assert len(failures) == 1 and "repro.no_such_module.Thing" in failures[0]


def test_checker_accepts_urls_and_anchors(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text(
        "[a](https://example.com) [b](#section) [c](mailto:x@example.com)",
        encoding="utf-8",
    )
    assert docs_check.check_links(doc, tmp_path) == []
