"""Property-based tests for fragment capture (Hypothesis).

For random documents × random queries:

* the captured fragment ids equal the id-mode results;
* every fragment is well-formed XML whose root tag is the matched
  element's tag and whose subtree equals the original element's;
* no buffers remain after the document ends (the refcount GC drains).
"""

from hypothesis import given, settings

from repro.core.fragments import FragmentCapture
from repro.core.processor import XPathStream
from repro.stream.document import build_document
from repro.stream.tokenizer import parse_string
from repro.stream.writer import element_to_string
from tests.test_equivalence_properties import xml_trees, xpath_queries


@settings(max_examples=200, deadline=None)
@given(xml=xml_trees(), query=xpath_queries())
def test_fragment_ids_match_id_mode(xml, query):
    events = list(parse_string(xml))
    expected = sorted(XPathStream(query).evaluate(iter(events)))
    capture = FragmentCapture(query)
    capture.feed(iter(events))
    assert sorted(node_id for node_id, _ in capture.fragments) == expected
    assert capture.buffered_candidates == 0


@settings(max_examples=150, deadline=None)
@given(xml=xml_trees(), query=xpath_queries())
def test_fragments_reproduce_the_matched_subtrees(xml, query):
    events = list(parse_string(xml, skip_whitespace=False))
    capture = FragmentCapture(query)
    capture.feed(iter(events))
    if not capture.fragments:
        return
    document = build_document(iter(events))
    by_id = {element.node_id: element for element in document.iter_elements()}
    for node_id, fragment in capture.fragments:
        element = by_id[node_id]
        # The fragment parses, is rooted at the right tag, and matches
        # the element's own serialization.
        reparsed = build_document(parse_string(fragment, skip_whitespace=False))
        assert reparsed.root.tag == element.tag
        assert fragment == element_to_string(element)
