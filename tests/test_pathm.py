"""Tests for PathM (repro.core.pathm, §3.1)."""

import pytest

from repro.core.pathm import PathM, evaluate_pathm
from repro.core.results import CallbackSink
from repro.errors import UnsupportedQueryError
from repro.stream.tokenizer import parse_string
from tests.conftest import chain_xml, chain_c1_id


def run(query, xml):
    return evaluate_pathm(query, parse_string(xml))


class TestBasicPaths:
    def test_child_path(self):
        assert run("/a/b", "<a><b/><c><b/></c></a>") == [2]

    def test_descendant_path(self):
        assert run("//b", "<a><b/><c><b/></c></a>") == [2, 4]

    def test_root_must_match_document_element(self):
        assert run("/b", "<a><b/></a>") == []
        assert run("/a", "<a><b/></a>") == [1]

    def test_descendant_root_matches_anywhere(self):
        assert run("//a", "<a><x><a/></x></a>") == [1, 3]

    def test_mixed_axes(self):
        assert run("/a//c", "<a><b><c/></b><c/></a>") == [3, 4]

    def test_wildcard(self):
        assert run("//a/*", "<a><b/><c/></a>") == [2, 3]

    def test_interior_wildcard(self):
        assert run("//a/*/d", "<a><b><d/></b><d/></a>") == [3]

    def test_no_matches(self):
        assert run("//zzz", "<a><b/></a>") == []

    def test_empty_elements(self):
        assert run("//a//b", "<a/>") == []


class TestPaperExample:
    def test_figure_2_execution(self):
        """M2 = //a//b//c over the a…b…c chain outputs c₁ on arrival."""
        xml = chain_xml(3, with_predicates=False)
        assert run("//a//b//c", xml) == [chain_c1_id(3, with_predicates=False)]

    def test_all_pattern_matches_share_one_solution(self):
        xml = chain_xml(5, with_predicates=False)
        results = run("//a//b//c", xml)
        assert len(results) == 1  # n² matches, one distinct solution


class TestIncrementalOutput:
    def test_solution_emitted_at_start_tag(self):
        """PathM reports a solution the moment its start tag qualifies."""
        emitted = []
        machine = PathM("//a//c", sink=CallbackSink(emitted.append))
        events = list(parse_string("<a><c><x/></c></a>"))
        machine.feed(events[:2])  # <a>, <c>
        assert emitted == [2]  # before </c> is even seen

    def test_stacks_pop_on_end(self):
        machine = PathM("//a//b")
        events = list(parse_string("<a><b/><b/></a>"))
        machine.feed(events)
        for node in machine.machine.iter_nodes():
            assert machine.stack_of(node) == []


class TestRecursiveData:
    def test_recursive_descendants(self):
        xml = "<a><a><b/></a><b/></a>"
        assert run("//a//b", xml) == [3, 4]

    def test_child_axis_under_recursion(self):
        xml = "<a><a><b/></a></a>"
        assert run("/a/a/b", xml) == [3]
        assert run("/a/b", xml) == []

    def test_same_tag_parent_child(self):
        assert run("//a/a", "<a><a><a/></a></a>") == [2, 3]


class TestGating:
    def test_predicates_rejected(self):
        with pytest.raises(UnsupportedQueryError, match="predicates"):
            PathM("//a[b]")

    def test_value_test_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            PathM("//a[. = 'x']")

    def test_reset_clears_state(self):
        machine = PathM("//a")
        machine.feed(parse_string("<a><a/></a>"))
        assert machine.results == [1, 2]
        machine.reset()
        assert machine.results == [1, 2]  # sink unaffected by reset
        for node in machine.machine.iter_nodes():
            assert machine.stack_of(node) == []
