"""Tests for the DTD-driven generator (repro.datasets.generator)."""

from repro.datasets.dtd import (
    AttributeDecl,
    ElementDecl,
    Particle,
    constant,
    make_dtd,
)
from repro.datasets.generator import DtdGenerator, GeneratorConfig
from repro.stream.events import StartElement, document_depth, validate_events


def simple_dtd():
    return make_dtd(
        "root",
        [
            ElementDecl("root", content=(Particle(("item",), 2, 4),)),
            ElementDecl(
                "item",
                attributes=(AttributeDecl("id", constant("1")),),
                text=constant("t"),
            ),
        ],
    )


def recursive_dtd():
    return make_dtd(
        "n",
        [ElementDecl("n", content=(Particle(("n",), 0, 2, recursion_weight=0.7),))],
    )


class TestGeneration:
    def test_events_are_well_formed(self):
        events = DtdGenerator(simple_dtd()).events()
        list(validate_events(events))  # raises on violation

    def test_determinism_per_seed(self):
        config = GeneratorConfig(seed=5)
        first = list(DtdGenerator(simple_dtd(), config).events())
        second = list(DtdGenerator(simple_dtd(), config).events())
        assert first == second

    def test_different_seeds_differ(self):
        base = recursive_dtd()
        a = list(DtdGenerator(base, GeneratorConfig(seed=1)).events())
        b = list(DtdGenerator(base, GeneratorConfig(seed=2)).events())
        # Extremely unlikely to coincide; both are valid regardless.
        assert a != b or len(a) <= 4

    def test_repeat_counts_respect_bounds(self):
        events = list(DtdGenerator(simple_dtd()).events())
        items = [e for e in events if isinstance(e, StartElement) and e.tag == "item"]
        assert 2 <= len(items) <= 4

    def test_max_repeats_caps_unbounded_particles(self):
        dtd = make_dtd(
            "r",
            [
                ElementDecl("r", content=(Particle(("x",), 0, None),)),
                ElementDecl("x"),
            ],
        )
        config = GeneratorConfig(seed=3, max_repeats=2)
        events = list(DtdGenerator(dtd, config).events())
        xs = [e for e in events if isinstance(e, StartElement) and e.tag == "x"]
        assert len(xs) <= 2

    def test_number_levels_caps_depth(self):
        config = GeneratorConfig(seed=11, number_levels=5)
        events = list(DtdGenerator(recursive_dtd(), config).events())
        assert document_depth(iter(events)) <= 5

    def test_attributes_sampled(self):
        events = DtdGenerator(simple_dtd()).events()
        items = [e for e in events if isinstance(e, StartElement) and e.tag == "item"]
        assert all(e.attributes == {"id": "1"} for e in items)

    def test_text_generated(self):
        from repro.stream.events import Characters

        events = list(DtdGenerator(simple_dtd()).events())
        texts = [e.text for e in events if isinstance(e, Characters)]
        assert texts and all(t == "t" for t in texts)

    def test_ids_are_document_ordered(self):
        events = list(DtdGenerator(simple_dtd()).events())
        ids = [e.node_id for e in events if isinstance(e, StartElement)]
        assert ids == sorted(ids)
        assert ids[0] == 1


class TestForest:
    def test_forest_wraps_count_roots(self):
        events = list(DtdGenerator(simple_dtd()).forest_events("wrap", 3))
        list(validate_events(iter(events)))
        roots = [e for e in events if isinstance(e, StartElement) and e.tag == "root"]
        assert len(roots) == 3
        assert events[0].tag == "wrap"

    def test_forest_records_differ(self):
        events = list(DtdGenerator(recursive_dtd()).forest_events("w", 8))
        # Heterogeneous records: not every record has the same length.
        sizes = []
        depth_down = 0
        size = 0
        for event in events[1:-1]:
            if isinstance(event, StartElement):
                depth_down += 1
                size += 1
            else:
                depth_down -= 1
                if depth_down == 0:
                    sizes.append(size)
                    size = 0
        assert len(set(sizes)) > 1 or len(sizes) <= 2
