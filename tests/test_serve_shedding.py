"""Admission control and shedding policy: deterministic bookkeeping."""

from __future__ import annotations

from repro.serve.session import ServeConfig
from repro.serve.shedding import LoadShedder


def make_shedder(**overrides) -> LoadShedder:
    defaults = dict(max_sessions=4, max_sessions_per_tenant=2,
                    max_queued_chars=1000, retry_after=0.5)
    defaults.update(overrides)
    return LoadShedder(ServeConfig(**defaults))


class TestAdmission:
    def test_admits_within_budget(self):
        shedder = make_shedder()
        assert shedder.admit("t1", 0) is None

    def test_session_ceiling(self):
        shedder = make_shedder(max_sessions=2, max_sessions_per_tenant=10)
        shedder.register("a", "t1", 0)
        shedder.register("b", "t2", 0)
        refusal = shedder.admit("t3", 0)
        assert refusal["code"] == "over_sessions"
        assert refusal["retry_after"] >= 0.5
        assert shedder.rejected == 1

    def test_tenant_ceiling_is_per_tenant(self):
        shedder = make_shedder()
        shedder.register("a", "t1", 0)
        shedder.register("b", "t1", 0)
        assert shedder.admit("t1", 0)["code"] == "over_tenant_sessions"
        assert shedder.admit("t2", 0) is None  # other tenants unaffected

    def test_queue_budget_refusal_scales_retry_after(self):
        shedder = make_shedder(max_queued_chars=100)
        shedder.register("a", "t1", 0)
        shedder.add_queued("a", 300)  # 3x over budget
        refusal = shedder.admit("t2", 0)
        assert refusal["code"] == "over_queue_budget"
        assert refusal["retry_after"] == 1.5  # 0.5 * 3x pressure

    def test_unregister_frees_tenant_slot(self):
        shedder = make_shedder()
        shedder.register("a", "t1", 0)
        shedder.register("b", "t1", 0)
        shedder.unregister("a")
        assert shedder.admit("t1", 0) is None

    def test_unregister_releases_queued_chars(self):
        shedder = make_shedder()
        shedder.register("a", "t1", 0)
        shedder.add_queued("a", 800)
        shedder.unregister("a")
        assert shedder.queued_chars == 0


class TestVictims:
    def test_no_victims_within_budget(self):
        shedder = make_shedder()
        shedder.register("a", "t1", 0)
        assert shedder.victims() == []

    def test_newest_lowest_priority_first(self):
        shedder = make_shedder(max_sessions=2, max_sessions_per_tenant=10)
        shedder.register("old-low", "t1", 0)
        shedder.register("high", "t1", 5)
        shedder.register("new-low", "t1", 0)  # over ceiling now
        victims = shedder.victims()
        assert [v.token for v in victims] == ["new-low"]
        assert shedder.shed == 1

    def test_priority_protects_even_newer_sessions(self):
        shedder = make_shedder(max_sessions=2, max_sessions_per_tenant=10)
        shedder.register("low-a", "t1", 0)
        shedder.register("low-b", "t1", 0)
        shedder.register("vip", "t1", 9)
        victims = shedder.victims()
        # the VIP survives; the newest low-priority session goes first
        assert [v.token for v in victims] == ["low-b"]

    def test_queue_pressure_sheds_until_under_budget(self):
        shedder = make_shedder(max_sessions=100, max_sessions_per_tenant=100,
                               max_queued_chars=100)
        shedder.register("a", "t1", 0)
        shedder.register("b", "t1", 0)
        shedder.register("c", "t1", 0)
        shedder.add_queued("a", 60)
        shedder.add_queued("b", 60)
        shedder.add_queued("c", 60)  # 180 > 100
        victims = shedder.victims()
        # newest first: shedding c (60) brings 180 -> 120, still over;
        # shedding b brings it to 60 — two victims, a survives.
        assert [v.token for v in victims] == ["c", "b"]

    def test_always_spares_one_survivor(self):
        shedder = make_shedder(max_sessions=1, max_sessions_per_tenant=100,
                               max_queued_chars=1)
        shedder.register("only", "t1", 0)
        shedder.add_queued("only", 10**6)
        assert shedder.victims() == []  # someone must make progress

    def test_retry_after_hint_tracks_pressure(self):
        shedder = make_shedder(max_queued_chars=100, retry_after=1.0)
        shedder.register("a", "t1", 0)
        assert shedder.retry_after_hint() == 1.0
        shedder.add_queued("a", 400)
        assert shedder.retry_after_hint() == 4.0
