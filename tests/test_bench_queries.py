"""The figure 6 query sets must satisfy their stated class constraints."""

import pytest

from repro.bench.queries import (
    BOOK_QUERIES,
    FULL_CLASS,
    PATH_CLASS,
    PROTEIN_QUERIES,
    QUERY_SETS,
    SIMPLE_PRED_CLASS,
    XMARK_QUERIES,
    get_query,
)
from repro.xpath.querytree import compile_query

ALL_SPECS = [
    (family, spec) for family, specs in QUERY_SETS.items() for spec in specs
]


@pytest.mark.parametrize("family, spec", ALL_SPECS,
                         ids=[f"{f}-{s.qid}" for f, s in ALL_SPECS])
def test_every_query_compiles(family, spec):
    compile_query(spec.xpath)


@pytest.mark.parametrize("queries", [BOOK_QUERIES, PROTEIN_QUERIES])
class TestPaperClassStructure:
    def test_ten_queries(self, queries):
        assert len(queries) == 10

    def test_q1_to_q4_are_path_queries(self, queries):
        """Q1-Q4 ∈ XP{/,//,*}: no predicates at all."""
        for spec in queries[:4]:
            assert spec.fragment == PATH_CLASS
            tree = compile_query(spec.xpath)
            assert not tree.has_branches(), spec

    def test_q5_to_q8_have_simple_predicates(self, queries):
        """Q5-Q8 ∈ XP{/,//,[]}: predicates are one child step or an
        attribute (the XSQ-compatible restriction)."""
        for spec in queries[4:8]:
            assert spec.fragment == SIMPLE_PRED_CLASS
            tree = compile_query(spec.xpath)
            assert tree.has_branches(), spec
            assert not tree.has_wildcard(), spec
            for node in tree.iter_nodes():
                for child in node.children:
                    if child.on_trunk:
                        continue
                    assert not child.children, f"{spec}: nested predicate"

    def test_q8_has_a_value_test(self, queries):
        tree = compile_query(queries[7].xpath)
        has_value = any(
            node.value_tests
            or any(t.value_test for t in node.attribute_tests)
            for node in tree.iter_nodes()
        )
        assert has_value

    def test_q9_q10_use_the_full_fragment(self, queries):
        for spec in queries[8:]:
            assert spec.fragment == FULL_CLASS
            tree = compile_query(spec.xpath)
            assert tree.has_branches()

    def test_q10_has_wildcard(self, queries):
        assert compile_query(queries[9].xpath).has_wildcard()


class TestXmarkQueries:
    def test_count(self):
        assert len(XMARK_QUERIES) == 10

    def test_vocabulary_is_auction_site(self):
        text = " ".join(spec.xpath for spec in XMARK_QUERIES)
        for name in ("site", "person", "open_auction", "closed_auction"):
            assert name in text


class TestLookup:
    def test_get_query(self):
        assert get_query("book", "Q5").qid == "Q5"

    def test_get_query_unknown(self):
        with pytest.raises(KeyError):
            get_query("book", "Q99")

    def test_str_form(self):
        assert "Q1" in str(get_query("book", "Q1"))


class TestQueriesProduceResults:
    """Most benchmark queries should actually select something, so the
    figures measure real work (Q8's value test is deliberately selective).
    """

    @pytest.mark.parametrize("family", ["book", "benchmark", "protein"])
    def test_result_counts(self, family):
        from repro.bench.systems import TwigmEngine
        from repro.datasets.book import book_events
        from repro.datasets.protein import protein_events
        from repro.datasets.xmark import xmark_events

        sources = {
            "book": lambda: book_events(15),
            "benchmark": lambda: xmark_events(1.0),
            "protein": lambda: protein_events(80),
        }
        engine = TwigmEngine()
        empty = []
        for spec in QUERY_SETS[family]:
            count = len(engine.run(spec.xpath, sources[family]()))
            if count == 0:
                empty.append(spec.qid)
        # Allow at most the deliberately-selective value-test queries to
        # come up empty at this tiny scale.
        assert len(empty) <= 2, f"too many empty queries for {family}: {empty}"
