"""Tests for TwigM machine construction (repro.core.machine, §4.2)."""

from repro.core.machine import EDGE_EQ, EDGE_GE, build_machine
from repro.xpath.querytree import compile_query


def machine_for(query):
    return build_machine(compile_query(query))


class TestBasicConstruction:
    def test_chain_machine(self):
        machine = machine_for("/a/b/c")
        assert machine.root.label == "a"
        assert machine.root.edge_op == EDGE_EQ
        assert machine.root.edge_dist == 1
        b = machine.root.children[0]
        assert (b.label, b.edge_op, b.edge_dist) == ("b", EDGE_EQ, 1)
        assert machine.return_node.label == "c"

    def test_descendant_edges(self):
        machine = machine_for("//a//b")
        assert machine.root.edge_op == EDGE_GE
        assert machine.root.children[0].edge_op == EDGE_GE

    def test_paper_example_m1(self):
        """Figure 4: machine for //a[d]//b[e]//c has five nodes."""
        machine = machine_for("//a[d]//b[e]//c")
        labels = sorted(node.label for node in machine.iter_nodes())
        assert labels == ["a", "b", "c", "d", "e"]
        assert machine.size() == 5

    def test_child_indices_match_branch_positions(self):
        machine = machine_for("//a[d][e]/b")
        for index, child in enumerate(machine.root.children):
            assert child.child_index == index

    def test_complete_mask(self):
        machine = machine_for("//a[d][e]/b")
        assert machine.root.complete_mask == 0b111  # three children
        leaf = machine.return_node
        assert leaf.complete_mask == 0

    def test_return_node_flag(self):
        machine = machine_for("//a/b")
        assert not machine.root.is_return
        assert machine.return_node.is_return


class TestWildcardFolding:
    def test_interior_star_folds_into_distance(self):
        """Section 4.2: no machine node for interior '*' nodes."""
        machine = machine_for("//a/*/c")
        assert machine.size() == 2
        c = machine.return_node
        assert (c.edge_op, c.edge_dist) == (EDGE_EQ, 2)

    def test_two_interior_stars(self):
        machine = machine_for("/a/*/*/d")
        d = machine.return_node
        assert (d.edge_op, d.edge_dist) == (EDGE_EQ, 3)

    def test_descendant_anywhere_in_chain_gives_ge(self):
        machine = machine_for("//a//*/c")
        c = machine.return_node
        assert (c.edge_op, c.edge_dist) == (EDGE_GE, 2)

    def test_star_then_descendant(self):
        machine = machine_for("/a/*//c")
        c = machine.return_node
        assert (c.edge_op, c.edge_dist) == (EDGE_GE, 2)

    def test_leading_star_folds_into_root_edge(self):
        machine = machine_for("/*/b")
        assert machine.root.label == "b"
        assert (machine.root.edge_op, machine.root.edge_dist) == (EDGE_EQ, 2)

    def test_star_return_node_is_materialised(self):
        machine = machine_for("//a/*")
        assert machine.return_node.label == "*"
        assert machine.size() == 2

    def test_star_leaf_in_predicate_is_materialised(self):
        machine = machine_for("//a[*]/b")
        labels = sorted(node.label for node in machine.iter_nodes())
        assert labels == ["*", "a", "b"]

    def test_star_with_predicate_is_materialised(self):
        machine = machine_for("//*[d]/b")
        assert machine.root.label == "*"

    def test_star_in_predicate_path_folds(self):
        machine = machine_for("//a[*/e]/b")
        labels = sorted(node.label for node in machine.iter_nodes())
        assert labels == ["a", "b", "e"]
        e = next(node for node in machine.iter_nodes() if node.label == "e")
        assert (e.edge_op, e.edge_dist) == (EDGE_EQ, 2)


class TestDispatch:
    def test_nodes_for_tag(self):
        machine = machine_for("//a//a/b")
        assert len(machine.nodes_for_tag("a")) == 2
        assert len(machine.nodes_for_tag("b")) == 1
        assert machine.nodes_for_tag("zzz") == []

    def test_wildcards_receive_every_tag(self):
        machine = machine_for("//a/*")
        assert len(machine.nodes_for_tag("a")) == 2  # a-node + '*'
        assert len(machine.nodes_for_tag("anything")) == 1

    def test_value_nodes_collected(self):
        machine = machine_for("//book[price < 30]/title")
        assert [node.label for node in machine.value_nodes] == ["price"]

    def test_attribute_tests_on_machine_node(self):
        machine = machine_for("//a[@id = '7']/b")
        assert machine.root.attribute_tests
        assert machine.root.attributes_satisfied({"id": "7"})
        assert not machine.root.attributes_satisfied({"id": "8"})
        assert not machine.root.attributes_satisfied({})


class TestEdgePredicate:
    def test_eq_edge(self):
        machine = machine_for("/a/b")
        b = machine.return_node
        assert b.edge_satisfied(1)
        assert not b.edge_satisfied(2)

    def test_ge_edge(self):
        machine = machine_for("/a//b")
        b = machine.return_node
        assert b.edge_satisfied(1)
        assert b.edge_satisfied(5)
        assert not b.edge_satisfied(0)
