"""MultiQueryEngine (repro.multiq.engine): the dispatcher front door."""

from __future__ import annotations

import pytest

from repro.core.processor import XPathStream
from repro.errors import ResourceLimitError
from repro.multiq import MultiQueryEngine
from repro.stream.recovery import ResourceLimits
from repro.stream.tokenizer import parse_string

from tests.conftest import chain_xml

XML = (
    "<catalog>"
    "<book year='2006'><price>25</price><title>A</title></book>"
    "<book year='1999'><price>60</price><title>B</title></book>"
    "</catalog>"
)

QUERIES = {
    "cheap": "//book[price < 30]/title",
    "recent": "//book[@year = '2006']/title",
    "titles": "//title",
    "dup": "//title",
}


class TestEvaluation:
    def test_one_pass_matches_individual_runs(self):
        combined = MultiQueryEngine(QUERIES).evaluate(XML)
        for name, query in QUERIES.items():
            assert combined[name] == XPathStream(query).evaluate(XML), name

    def test_figure1_queries(self, figure1_xml):
        queries = {"q1": "//a[d]//b[e]//c", "ab": "//a//b", "rooted": "/a/a"}
        combined = MultiQueryEngine(queries).evaluate(figure1_xml)
        for name, query in queries.items():
            assert combined[name] == XPathStream(query).evaluate(figure1_xml)

    def test_engine_dispatch_per_query(self):
        engines = MultiQueryEngine(QUERIES).engine_names()
        assert engines["titles"] == "pathm"
        assert engines["cheap"] == "twigm"

    def test_names_and_len(self):
        engine = MultiQueryEngine(QUERIES)
        assert engine.names == list(QUERIES)
        assert len(engine) == len(QUERIES)

    def test_duplicate_name_rejected(self):
        engine = MultiQueryEngine({"q": "//a"})
        with pytest.raises(ValueError, match="duplicate"):
            engine.add_query("q", "//b")

    def test_remove_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            MultiQueryEngine({"q": "//a"}).remove_query("other")

    def test_empty_engine_is_usable(self):
        engine = MultiQueryEngine()
        assert engine.evaluate(XML) == {}


class TestCallbacks:
    def test_engine_level_callback(self):
        seen = []
        engine = MultiQueryEngine(
            QUERIES, on_match=lambda name, i: seen.append((name, i))
        )
        engine.feed_events(parse_string(XML))
        assert ("titles", 4) in seen and ("dup", 4) in seen
        assert ("cheap", 4) in seen and ("recent", 4) in seen
        assert engine.results() == {}  # callback mode collects nothing

    def test_per_query_callback_overrides(self):
        cheap_ids, rest = [], []
        engine = MultiQueryEngine(on_match=lambda name, i: rest.append((name, i)))
        engine.add_query("cheap", QUERIES["cheap"], on_match=cheap_ids.append)
        engine.add_query("titles", "//title")
        engine.feed_events(parse_string(XML))
        assert cheap_ids == [4]
        assert ("titles", 4) in rest and ("titles", 7) in rest
        assert all(name != "cheap" for name, _ in rest)

    def test_mixed_collect_and_callback(self):
        fired = []
        engine = MultiQueryEngine()
        engine.add_query("collected", "//title")
        engine.add_query("called", "//title", on_match=fired.append)
        engine.feed_events(parse_string(XML))
        assert engine.results() == {"collected": [4, 7]}
        assert fired == [4, 7]


class TestDispatchStats:
    def test_broadcast_counterfactual(self):
        events = list(parse_string(XML))
        engine = MultiQueryEngine(QUERIES)
        engine.feed_events(events)
        stats = engine.dispatch_stats()
        assert stats.events == len(events)
        assert stats.queries == len(QUERIES)
        assert stats.units == 3  # dup shares titles' machine
        assert stats.machine_events_broadcast == len(events) * len(QUERIES)
        assert 0 < stats.machine_events_dispatched < stats.machine_events_broadcast
        assert stats.reduction > 1.0
        assert stats.to_dict()["reduction"] == stats.reduction

    def test_disjoint_alphabets_route_sharply(self):
        """Queries over disjoint tag sets only ever pay for their own."""
        engine = MultiQueryEngine({"left": "//x//y", "right": "//a//b"})
        engine.feed_events(parse_string(chain_xml(4, with_predicates=False)))
        stats = engine.dispatch_stats()
        # 'left' never fires: dispatched is (roughly) one machine's share
        assert stats.machine_events_dispatched <= stats.machine_events_broadcast / 2


class TestResourceLimits:
    def test_limited_query_enforces_like_a_dedicated_stream(self):
        engine = MultiQueryEngine()
        engine.add_query("capped", "//a", limits=ResourceLimits(max_total_events=3))
        with pytest.raises(ResourceLimitError) as info:
            engine.feed_events(parse_string(chain_xml(4, with_predicates=False)))
        assert info.value.limit == "max_total_events"

    def test_limited_query_sees_every_event(self):
        """Limit accounting counts all events, not just routed ones — the
        limited unit must ride the unfiltered path."""
        xml = "<r><x/><x/><x/><a/></r>"
        engine = MultiQueryEngine()
        # '//a' never routes on 'x', but max_total_events counts them.
        engine.add_query("capped", "//a", limits=ResourceLimits(max_total_events=4))
        with pytest.raises(ResourceLimitError):
            engine.feed_events(parse_string(xml))

    def test_generous_limits_do_not_change_results(self):
        engine = MultiQueryEngine()
        engine.add_query("capped", "//a//b", limits=ResourceLimits(max_depth=1000))
        engine.add_query("free", "//a//b")
        results = engine.evaluate(chain_xml(3, with_predicates=False))
        assert results["capped"] == results["free"]
        assert engine.unit_count() == 2  # limits key the dedup apart


class TestIncrementalAndReset:
    def test_feed_text_chunks(self):
        engine = MultiQueryEngine(QUERIES)
        for index in range(0, len(XML), 16):
            engine.feed_text(XML[index:index + 16])
        assert engine.close()["titles"] == [4, 7]

    def test_reset_reruns_cleanly(self):
        engine = MultiQueryEngine({"t": "//title"})
        assert engine.evaluate(XML)["t"] == [4, 7]
        engine.reset()
        assert engine.dispatch_stats().events == 0
        assert engine.evaluate("<catalog><title/></catalog>")["t"] == [2]

    def test_reset_restores_sharing(self):
        engine = MultiQueryEngine({"one": "//a"})
        engine.feed_events(parse_string("<a/>"))
        engine.reset()
        engine.add_query("two", "//a")  # cold again -> may share
        assert engine.unit_count() == 1

    def test_remove_discards_collected_results(self):
        engine = MultiQueryEngine({"t": "//title", "p": "//price"})
        engine.feed_events(parse_string(XML))
        engine.remove_query("t")
        assert engine.results() == {"p": [3, 6]}
