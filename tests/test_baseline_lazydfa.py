"""Tests for the XMLTK stand-in (repro.baselines.lazydfa)."""

import pytest

from repro.baselines.lazydfa import LazyDfa, LazyDfaEngine
from repro.core.results import CollectingSink
from repro.errors import UnsupportedQueryError
from repro.stream.tokenizer import parse_string
from repro.xpath.querytree import compile_query


def run(query, xml):
    return LazyDfaEngine().run(query, parse_string(xml))


class TestCorrectness:
    def test_child_path(self):
        assert run("/a/b", "<a><b/><c><b/></c></a>") == [2]

    def test_descendant_path(self):
        assert run("//b", "<a><b><b/></b></a>") == [2, 3]

    def test_rooted_vs_descendant_first_step(self):
        assert run("/b", "<a><b/></a>") == []
        assert run("//b", "<a><b/></a>") == [2]

    def test_wildcards(self):
        assert run("//a/*/c", "<a><x><c/></x><c/></a>") == [3]
        assert run("//*", "<a><b/></a>") == [1, 2]

    def test_mixed_axes(self):
        assert run("/a//b/c", "<a><x><b><c/></b></x><c/></a>") == [4]

    def test_recursive_data(self):
        assert run("//a//a", "<a><a><a/></a></a>") == [2, 3]

    def test_output_is_immediate(self):
        engine = LazyDfaEngine()
        sink = CollectingSink()
        events = list(parse_string("<a><b><x/></b></a>"))
        # Feed only the first two events: <a><b>.
        engine.run_with_sink("//a/b", iter(events[:2]), sink)
        assert sink.results == [2]


class TestLaziness:
    def test_states_created_on_demand(self):
        tree = compile_query("//a//b")
        dfa = LazyDfa(tree)
        assert dfa.state_count == 1  # just the initial state
        state = dfa.step(dfa.initial, "a")
        assert dfa.state_count == 2
        dfa.step(state, "b")
        assert dfa.state_count == 3

    def test_transitions_cached(self):
        dfa = LazyDfa(compile_query("//a"))
        first = dfa.step(dfa.initial, "a")
        again = dfa.step(dfa.initial, "a")
        assert first is again
        assert dfa.transition_count == 1

    def test_engine_exposes_dfa(self):
        engine = LazyDfaEngine()
        engine.run("//a//b", parse_string("<a><b/></a>"))
        assert engine.last_dfa.state_count >= 2

    def test_state_growth_with_wildcards(self):
        """Multiple '*' steps inflate the subset construction — the
        weakness the paper attributes to XMLTK on '*'-heavy queries."""
        wide = "<r>" + "".join(
            f"<t{i}>" + "".join(f"<u{j}><v/></u{j}>" for j in range(4)) + f"</t{i}>"
            for i in range(4)
        ) + "</r>"
        plain = LazyDfaEngine()
        plain.run("//r//v", parse_string(wide))
        starry = LazyDfaEngine()
        starry.run("//*//*//v", parse_string(wide))
        assert starry.last_dfa.state_count > plain.last_dfa.state_count


class TestPropertyDifferential:
    def test_random_documents_against_oracle(self):
        """Hypothesis: on XP{/,//,*}, the lazy DFA ≡ the oracle."""
        from hypothesis import given, settings, strategies as st

        from repro.baselines.navigational import NavigationalDomEngine
        from tests.test_equivalence_properties import xml_trees

        oracle = NavigationalDomEngine()

        @st.composite
        def path_queries(draw):
            n_steps = draw(st.integers(1, 4))
            parts = []
            for _ in range(n_steps):
                axis = draw(st.sampled_from(["/", "//"]))
                name = draw(st.sampled_from(["a", "b", "c", "d", "*"]))
                parts.append(f"{axis}{name}")
            return "".join(parts)

        @settings(max_examples=200, deadline=None)
        @given(xml=xml_trees(), query=path_queries())
        def check(xml, query):
            events = list(parse_string(xml))
            expected = sorted(oracle.run(query, iter(events)))
            actual = sorted(LazyDfaEngine().run(query, iter(events)))
            assert actual == expected, (query, xml)

        check()


class TestGating:
    def test_predicates_rejected(self):
        with pytest.raises(UnsupportedQueryError, match="predicates"):
            LazyDfa(compile_query("//a[b]"))

    def test_supports(self):
        engine = LazyDfaEngine()
        assert engine.supports("//a/*/b")
        assert not engine.supports("//a[b]")
        assert not engine.supports("//a[@id]")
        assert engine.streaming
