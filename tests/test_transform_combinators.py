"""Tests for stream combinators (repro.transform.combinators)."""

import pytest

from repro.stream.tokenizer import XmlTokenizer
from repro.transform.combinators import (
    FragmentMerger,
    Tee,
    filter_stream,
    merge,
    split,
    tee,
)
from repro.transform.extract import SubstreamExtractor

DOC = (
    "<r><a>one</a><b><c>x</c></b><a>two</a><d>skip</d>"
    "<b><c>y</c></b></r>"
)


class TestTee:
    def test_branches_each_extract(self):
        left = SubstreamExtractor("//a")
        right = SubstreamExtractor("//c")
        fan = tee(left, right)
        XmlTokenizer().feed_into(DOC, fan)
        left_texts, right_texts = [
            [f.text for f in result] for result in fan.close()
        ]
        assert left_texts == ["<a>one</a>", "<a>two</a>"]
        assert right_texts == ["<c>x</c>", "<c>y</c>"]

    def test_results_match_solo_evaluation(self):
        solo = SubstreamExtractor("//a").evaluate_push(DOC)
        teed = SubstreamExtractor("//a")
        fan = tee(teed)
        fan.feed_text(DOC, XmlTokenizer())
        assert fan.close()[0] == solo

    def test_dead_branches_skip(self):
        fan = tee(SubstreamExtractor("//a"), SubstreamExtractor("//c"))
        XmlTokenizer().feed_into(DOC, fan)
        fan.close()
        assert fan.skipped > 0
        assert 0.0 < fan.skip_ratio < 1.0

    def test_plain_handler_gets_everything(self):
        from repro.stream.events import EventCollector

        collector = EventCollector()
        fan = Tee(collector)
        XmlTokenizer().feed_into(DOC, fan)
        assert fan.skipped == 0
        assert collector.events[0].tag == "r"


class TestSplit:
    def test_routes_by_name(self):
        hits = []
        fan = split(
            {"as": "//a", "cs": "//c"},
            on_fragment=lambda name, node_id, text: hits.append((name, text)),
        )
        XmlTokenizer().feed_into(DOC, fan)
        fan.close()
        assert ("as", "<a>one</a>") in hits
        assert ("cs", "<c>y</c>") in hits
        assert len(hits) == 4


class TestMerge:
    def test_merge_wraps_fragments(self):
        out = merge(["<a>1</a>", "<b/>"], root="all")
        assert out == "<all><a>1</a><b/></all>"

    def test_empty_merge_self_closes(self):
        assert merge([], root="all") == "<all/>"

    def test_attributes_escaped(self):
        out = merge(["<x/>"], root="all", attributes={"k": 'a"b'})
        assert out == '<all k="a&quot;b"><x/></all>'

    def test_incremental_chunks(self):
        chunks = []
        merger = FragmentMerger("all", on_chunk=chunks.append)
        merger.add("<x/>")
        merger.add("<y/>")
        merger.close()
        assert "".join(chunks) == "<all><x/><y/></all>"
        assert merger.count == 2

    def test_add_after_close_rejected(self):
        merger = FragmentMerger()
        merger.close()
        with pytest.raises(ValueError):
            merger.add("<x/>")


class TestFilterStream:
    def test_drop_mode(self):
        out = filter_stream(DOC, "//b")
        assert out == "<r><a>one</a><a>two</a><d>skip</d></r>"

    def test_keep_mode(self):
        out = filter_stream(DOC, "//a", mode="keep", root="kept")
        assert out == "<kept><a>one</a><a>two</a></kept>"

    def test_keep_mode_no_matches(self):
        assert filter_stream(DOC, "//zz", mode="keep") == "<results/>"

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            filter_stream(DOC, "//a", mode="invert")
