"""Sessions: admission, idempotent feeding, checkpoint/resume, result log.

The load-bearing property throughout: a session killed at ANY point and
resumed from its last checkpoint delivers the client a byte-identical
result stream — replayed results regenerate with the same sequence
numbers, undelivered pre-checkpoint results re-send from the log, and
already-held results are suppressed.
"""

from __future__ import annotations

import json

import pytest

from repro.core.processor import XPathStream
from repro.errors import CheckpointError, ResourceLimitError
from repro.serve.session import ServeConfig, Session, SessionRejected, SessionStore
from repro.stream.recovery import ResourceLimits

XML = (
    "<site><open_auctions>"
    + "".join(
        f"<auction><seller>s{i}</seller><price>{i}</price></auction>"
        for i in range(40)
    )
    + "</open_auctions></site>"
)

CONFIG = ServeConfig(checkpoint_interval=2)


def reference(query: str, xml: str = XML) -> list[int]:
    stream = XPathStream(query)
    stream.feed_text(xml)
    return stream.close()


def chunked(xml: str, size: int) -> list[tuple[int, str]]:
    return [(i, xml[i:i + size]) for i in range(0, len(xml), size)]


def collect_session(queries: dict, config: ServeConfig = CONFIG):
    results: list[tuple[str, int, int]] = []
    session = Session.open(
        {"queries": queries}, config,
        lambda name, node_id, seq: results.append((name, node_id, seq)),
    )
    return session, results


class TestAdmission:
    def test_no_queries_rejected(self):
        with pytest.raises(SessionRejected) as info:
            Session.open({}, CONFIG, lambda *a: None)
        assert info.value.payload["code"] == "bad_hello"

    def test_too_many_queries_rejected(self):
        queries = {f"q{i}": "//a" for i in range(CONFIG.max_queries_per_session + 1)}
        with pytest.raises(SessionRejected) as info:
            Session.open({"queries": queries}, CONFIG, lambda *a: None)
        assert info.value.payload["code"] == "too_many_queries"

    def test_unparsable_query_rejected_by_name(self):
        with pytest.raises(SessionRejected) as info:
            Session.open(
                {"queries": {"ok": "//a", "broken": "//a[["}},
                CONFIG, lambda *a: None,
            )
        assert info.value.payload["code"] == "bad_query"
        assert "broken" in info.value.payload["reason"]

    def test_deadline_capped(self):
        config = ServeConfig(deadline_cap=10.0)
        session = Session.open(
            {"queries": {"q": "//a"}, "deadline_ms": 3_600_000},
            config, lambda *a: None, now=1000.0,
        )
        assert session.deadline == pytest.approx(1010.0)
        assert session.deadline_expired(1010.1)
        assert not session.deadline_expired(1009.9)

    def test_reject_payload_is_serializable(self):
        with pytest.raises(SessionRejected) as info:
            Session.open({"queries": {}}, CONFIG, lambda *a: None)
        json.dumps(info.value.payload)  # must not raise


class TestFeeding:
    def test_single_query_matches_reference(self):
        session, results = collect_session({"q": "//auction/seller"})
        for offset, text in chunked(XML, 97):
            session.feed(offset, text)
        done = session.finish()
        assert [r[1] for r in results] == reference("//auction/seller")
        assert done["counts"] == {"q": len(results)}
        assert done["offset"] == len(XML)

    def test_multi_query_matches_reference(self):
        queries = {"sellers": "//auction/seller", "prices": "//auction/price"}
        session, results = collect_session(queries)
        for offset, text in chunked(XML, 131):
            session.feed(offset, text)
        session.finish()
        for name in queries:
            assert [r[1] for r in results if r[0] == name] == reference(queries[name])

    def test_replayed_chunk_is_noop(self):
        session, results = collect_session({"q": "//auction/seller"})
        chunks = chunked(XML, 200)
        session.feed(*chunks[0])
        seen = len(results)
        assert session.feed(*chunks[0]) is False  # exact replay
        assert len(results) == seen

    def test_partial_overlap_feeds_only_suffix(self):
        session, results = collect_session({"q": "//auction/seller"})
        session.feed(0, XML[:500])
        # a chunk straddling the frontier: 400..800 overlaps 400..500
        session.feed(400, XML[400:800])
        session.feed(800, XML[800:])
        session.finish()
        assert [r[1] for r in results] == reference("//auction/seller")

    def test_gap_raises(self):
        session, _ = collect_session({"q": "//a"})
        session.feed(0, "<site>")
        with pytest.raises(CheckpointError, match="input gap"):
            session.feed(100, "<x/>")

    def test_feed_after_finish_raises(self):
        session, _ = collect_session({"q": "//a"})
        session.feed(0, "<a/>")
        session.finish()
        with pytest.raises(CheckpointError, match="finished"):
            session.feed(4, "<b/>")

    def test_result_backlog_bounded(self):
        config = ServeConfig(max_result_backlog=5)
        session, _ = collect_session({"q": "//auction/seller"}, config)
        with pytest.raises(ResourceLimitError) as info:
            for offset, text in chunked(XML, 4096):
                session.feed(offset, text)
        assert info.value.limit == "max_result_backlog"
        assert info.value.configured == 5
        assert session.token in str(info.value)


class TestCheckpointResume:
    """Kill-and-resume differential: every checkpoint boundary, every
    acknowledgement state, byte-identical output."""

    def run_uninterrupted(self, queries: dict, size: int):
        session, results = collect_session(queries)
        for offset, text in chunked(XML, size):
            session.feed(offset, text)
        session.finish()
        return results

    def test_resume_at_every_chunk_boundary(self):
        queries = {"s": "//auction/seller", "p": "//auction/price"}
        size = 157
        expected = self.run_uninterrupted(queries, size)
        chunks = chunked(XML, size)
        for kill_at in range(1, len(chunks)):
            session, results = collect_session(queries)
            for offset, text in chunks[:kill_at]:
                session.feed(offset, text)
            blob = json.loads(json.dumps(session.checkpoint()))
            # The client acked everything it received; connection dies.
            delivered = list(results)
            resumed_results: list = []
            resumed = Session.resume(
                blob, CONFIG,
                lambda n, i, s: resumed_results.append((n, i, s)),
                last_result_seq=delivered[-1][2] if delivered else 0,
            )
            assert resumed.pending_replay == []  # client holds the log
            for offset, text in chunks:  # full replay from zero
                resumed.feed(offset, text)
            resumed.finish()
            assert delivered + resumed_results == expected, f"kill at {kill_at}"

    def test_resume_with_lost_results_resends_log_tail(self):
        """Results emitted before the checkpoint but never delivered come
        back from the unacknowledged-result log, verbatim."""
        queries = {"s": "//auction/seller"}
        size = 101
        expected = self.run_uninterrupted(queries, size)
        chunks = chunked(XML, size)
        session, results = collect_session(queries)
        for offset, text in chunks[:8]:
            session.feed(offset, text)
        blob = json.loads(json.dumps(session.checkpoint()))
        assert len(results) > 4
        # Client only received (and acked) the first 3 results; the rest
        # were in flight when the connection died.
        held = results[:3]
        lost = results[3:]
        resumed_results: list = []
        resumed = Session.resume(
            blob, CONFIG,
            lambda n, i, s: resumed_results.append((n, i, s)),
            last_result_seq=held[-1][2],
        )
        replayed = [(n, i, s) for s, n, i in resumed.pending_replay]
        assert replayed == lost  # the log tail is exactly what was lost
        for offset, text in chunks:
            resumed.feed(offset, text)
        resumed.finish()
        assert held + replayed + resumed_results == expected

    def test_mid_chunk_checkpoint_resumes_exactly(self):
        """Checkpoint with the tokenizer mid-construct (chunk split inside
        a tag): the snapshot carries the partial parse."""
        queries = {"s": "//auction/seller"}
        expected = self.run_uninterrupted(queries, 173)
        session, results = collect_session(queries)
        # split inside a tag name: feed an uneven prefix
        cut = XML.index("<seller>", 300) + 4  # mid-'<sel|ler>'
        session.feed(0, XML[:cut])
        blob = json.loads(json.dumps(session.checkpoint()))
        delivered = list(results)
        resumed_results: list = []
        resumed = Session.resume(
            blob, CONFIG,
            lambda n, i, s: resumed_results.append((n, i, s)),
            last_result_seq=delivered[-1][2] if delivered else 0,
        )
        resumed.feed(cut, XML[cut:])
        resumed.finish()
        assert delivered + resumed_results == expected

    def test_rack_trims_log(self):
        session, results = collect_session({"s": "//auction/seller"})
        for offset, text in chunked(XML, 500):
            session.feed(offset, text)
        assert len(session.result_log) == len(results)
        mid_seq = results[len(results) // 2][2]
        session.rack(mid_seq)
        assert all(entry[0] > mid_seq for entry in session.result_log)
        session.rack(results[-1][2])
        assert session.result_log == []
        # stale RACKs are ignored
        session.rack(1)
        assert session.client_seq == results[-1][2]

    def test_version_mismatch_rejected(self):
        session, _ = collect_session({"q": "//a"})
        blob = session.checkpoint()
        blob["version"] = 99
        with pytest.raises(CheckpointError, match="version"):
            Session.resume(blob, CONFIG, lambda *a: None)

    def test_malformed_blob_rejected(self):
        session, _ = collect_session({"q": "//a"})
        blob = session.checkpoint()
        del blob["engine"]
        with pytest.raises(CheckpointError, match="malformed"):
            Session.resume(blob, CONFIG, lambda *a: None)

    def test_checkpoint_cadence(self):
        config = ServeConfig(checkpoint_interval=3)
        session, _ = collect_session({"q": "//auction/seller"}, config)
        chunks = chunked(XML, 300)
        for i, (offset, text) in enumerate(chunks[:5]):
            session.feed(offset, text)
        assert session.should_checkpoint()  # 5 >= 3
        session.checkpoint()
        assert not session.should_checkpoint()
        assert session.acked_offset == session.input_offset


class TestSessionStore:
    def test_memory_round_trip(self):
        store = SessionStore(ttl=60)
        store.put("abc123", {"version": 1, "x": [1, 2]})
        assert store.get("abc123") == {"version": 1, "x": [1, 2]}
        store.delete("abc123")
        assert store.get("abc123") is None

    def test_disk_spool_survives_fresh_store(self, tmp_path):
        spool = str(tmp_path / "spool")
        store = SessionStore(ttl=60, spool_dir=spool)
        store.put("deadbeef", {"version": 1, "offset": 42})
        # a different store over the same spool (a restarted worker)
        fresh = SessionStore(ttl=60, spool_dir=spool)
        assert fresh.get("deadbeef") == {"version": 1, "offset": 42}

    def test_hostile_token_rejected(self, tmp_path):
        store = SessionStore(ttl=60, spool_dir=str(tmp_path))
        with pytest.raises(CheckpointError, match="malformed session token"):
            store.put("../../etc/passwd", {"version": 1})
        assert store.get("../escape") is None

    def test_sweep_expires(self):
        store = SessionStore(ttl=10)
        store.put("aa", {"v": 1}, now=0.0)
        store.put("bb", {"v": 2}, now=100.0)
        assert store.sweep(now=50.0) == 1
        assert store.get("aa") is None
        assert store.get("bb") is not None
