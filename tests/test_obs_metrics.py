"""repro.obs.metrics: registry semantics and exposition formats."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
)


def test_counter_inc_and_labels():
    registry = MetricsRegistry()
    counter = registry.counter("repro_x_total", "things")
    counter.inc()
    counter.inc(4, engine="twigm")
    assert counter.get() == 1
    assert counter.get(engine="twigm") == 4


def test_gauge_set_and_dec():
    registry = MetricsRegistry()
    gauge = registry.gauge("repro_depth", "depth")
    gauge.set(7)
    gauge.dec(2)
    assert gauge.get() == 5


def test_histogram_buckets_cumulative():
    registry = MetricsRegistry()
    hist = registry.histogram("repro_h_seconds", "latency", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(5.0)
    snap = registry.snapshot()["repro_h_seconds"]
    assert snap["buckets"]["0.1"] == 1
    assert snap["buckets"]["1"] == 2  # cumulative
    assert snap["buckets"]["+Inf"] == 3
    assert snap["count"] == 3
    assert snap["sum"] == pytest.approx(5.55)


def test_same_name_same_family():
    registry = MetricsRegistry()
    a = registry.counter("repro_x_total", "things")
    b = registry.counter("repro_x_total", "things")
    assert a is b


def test_kind_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("repro_x_total", "things")
    with pytest.raises(ValueError):
        registry.gauge("repro_x_total", "things")


def test_render_prometheus_shape():
    registry = MetricsRegistry()
    registry.counter("repro_x_total", 'escape "me" \\ here').inc(2, q="a\nb")
    text = registry.render_prometheus()
    assert "# HELP repro_x_total" in text
    assert "# TYPE repro_x_total counter" in text
    assert 'repro_x_total{q="a\\nb"} 2' in text
    assert text.endswith("\n")


def test_render_prometheus_histogram_suffixes():
    registry = MetricsRegistry()
    registry.histogram("repro_h_seconds", "h", buckets=(1.0,)).observe(0.5)
    text = registry.render_prometheus()
    assert 'repro_h_seconds_bucket{le="1"} 1' in text
    assert 'repro_h_seconds_bucket{le="+Inf"} 1' in text
    assert "repro_h_seconds_sum 0.5" in text
    assert "repro_h_seconds_count 1" in text


def test_render_json_loads():
    registry = MetricsRegistry()
    registry.counter("repro_x_total", "things").inc(3)
    loaded = json.loads(registry.render_json())
    assert loaded["repro_x_total"]["values"][0]["value"] == 3


def test_collectors_run_before_snapshot():
    registry = MetricsRegistry()
    gauge = registry.gauge("repro_live", "live")
    registry.add_collector(lambda: gauge.set(42))
    assert registry.snapshot()["repro_live"]["values"][0]["value"] == 42


def test_watch_receives_snapshots_on_tick():
    registry = MetricsRegistry()
    registry.counter("repro_x_total", "things").inc()
    seen = []
    registry.watch(seen.append)
    registry.tick()
    registry.tick()
    assert len(seen) == 2
    assert "repro_x_total" in seen[0]


def test_null_registry_is_inert():
    assert isinstance(NULL_REGISTRY, NullRegistry)
    assert not NULL_REGISTRY.enabled
    counter = NULL_REGISTRY.counter("repro_x_total", "things")
    counter.inc(10)
    assert counter.get() == 0
    assert NULL_REGISTRY.render_prometheus() == ""
    assert json.loads(NULL_REGISTRY.render_json()) == {}
