"""Error recovery: strict/skip/repair policies, diagnostics, well-nesting."""

from __future__ import annotations

import pytest

from repro.errors import XmlSyntaxError
from repro.stream.events import (
    Characters,
    EndElement,
    StartElement,
    validate_events,
    well_nested,
)
from repro.stream.recovery import (
    ACTION_REPAIRED,
    ACTION_SKIPPED,
    RecoveryPolicy,
    StreamDiagnostic,
)
from repro.stream.tokenizer import XmlTokenizer, parse_string


def lenient_parse(text: str, policy):
    diagnostics: list[StreamDiagnostic] = []
    events = list(
        parse_string(text, policy=policy, on_diagnostic=diagnostics.append)
    )
    return events, diagnostics


class TestPolicyCoercion:
    def test_from_string(self):
        assert RecoveryPolicy.coerce("strict") is RecoveryPolicy.STRICT
        assert RecoveryPolicy.coerce("skip") is RecoveryPolicy.SKIP
        assert RecoveryPolicy.coerce("repair") is RecoveryPolicy.REPAIR

    def test_from_enum(self):
        assert RecoveryPolicy.coerce(RecoveryPolicy.REPAIR) is RecoveryPolicy.REPAIR

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="recovery policy"):
            RecoveryPolicy.coerce("lenient")


class TestStrictUnchanged:
    """The default policy must behave exactly as before this layer existed."""

    def test_malformed_tag_raises(self):
        with pytest.raises(XmlSyntaxError):
            list(parse_string("<a><1bad/></a>"))

    def test_truncated_document_raises(self):
        tokenizer = XmlTokenizer()
        list(tokenizer.feed("<a><b>"))
        with pytest.raises(XmlSyntaxError, match="still open"):
            tokenizer.close()

    def test_mismatched_end_raises(self):
        with pytest.raises(XmlSyntaxError, match="does not match"):
            list(parse_string("<a><b></a></b>"))


class TestSkipPolicy:
    def test_malformed_tag_dropped_with_diagnostic(self):
        events, diagnostics = lenient_parse("<a><1bad/><b/></a>", RecoveryPolicy.SKIP)
        tags = [e.tag for e in events if isinstance(e, StartElement)]
        assert tags == ["a", "b"]
        assert any(d.action == ACTION_SKIPPED for d in diagnostics)

    def test_diagnostic_carries_position(self):
        _, diagnostics = lenient_parse("<a>\n<1bad/></a>", RecoveryPolicy.SKIP)
        bad = [d for d in diagnostics if "malformed" in d.message]
        assert bad and bad[0].line == 2

    def test_stray_end_tag_dropped(self):
        events, diagnostics = lenient_parse("<a></b></a>", RecoveryPolicy.SKIP)
        assert well_nested(events)
        assert [e.tag for e in events if isinstance(e, EndElement)] == ["a"]
        assert diagnostics

    def test_output_always_well_nested(self):
        corpora = [
            "<a><b></a>",
            "<a></b></a>",
            "<a><b/></a><c/>",
            "text before <a/>",
            "<a>&badent;</a>",
            "<a><!bogus></a>",
        ]
        for text in corpora:
            events, _ = lenient_parse(text, RecoveryPolicy.SKIP)
            assert well_nested(events), text
            validate_events(events, allow_empty=True)


class TestRepairPolicy:
    def test_truncated_document_gets_synthesized_ends(self):
        events, diagnostics = lenient_parse("<a><b><c>", RecoveryPolicy.REPAIR)
        ends = [e.tag for e in events if isinstance(e, EndElement)]
        assert ends == ["c", "b", "a"]
        assert sum(d.action == ACTION_REPAIRED for d in diagnostics) == 3

    def test_mismatched_end_synthesizes_intervening(self):
        # </a> arrives while b is open: repair closes b first, then a.
        events, diagnostics = lenient_parse("<a><b></a>", RecoveryPolicy.REPAIR)
        ends = [e.tag for e in events if isinstance(e, EndElement)]
        assert ends == ["b", "a"]
        assert any(d.action == ACTION_REPAIRED for d in diagnostics)

    def test_undecodable_entity_kept_raw(self):
        events, diagnostics = lenient_parse("<a>&nosuch;</a>", RecoveryPolicy.REPAIR)
        texts = [e.text for e in events if isinstance(e, Characters)]
        assert texts == ["&nosuch;"]
        assert diagnostics

    def test_skip_drops_that_same_text(self):
        events, _ = lenient_parse("<a>&nosuch;</a>", RecoveryPolicy.SKIP)
        assert not [e for e in events if isinstance(e, Characters)]

    def test_second_document_element_dropped_whole(self):
        events, diagnostics = lenient_parse(
            "<a/><b><c/></b>", RecoveryPolicy.REPAIR
        )
        tags = [e.tag for e in events if isinstance(e, StartElement)]
        assert tags == ["a"]
        assert diagnostics

    def test_every_recovery_emits_a_diagnostic(self):
        text = "<a><1bad/><b></a>"
        events, diagnostics = lenient_parse(text, RecoveryPolicy.REPAIR)
        # one skipped tag + one repaired end
        assert len(diagnostics) >= 2
        assert {d.action for d in diagnostics} == {ACTION_SKIPPED, ACTION_REPAIRED}
        for d in diagnostics:
            assert d.message
            assert d.line >= 1 and d.column >= 1


class TestDiagnosticsRetention:
    def test_tokenizer_retains_capped_list(self):
        tokenizer = XmlTokenizer(policy=RecoveryPolicy.SKIP)
        list(tokenizer.feed("<a>"))
        for _ in range(30):
            list(tokenizer.feed("</nope>"))
        list(tokenizer.feed("</a>"))
        tokenizer.close()
        assert tokenizer.diagnostic_count == 30
        assert len(tokenizer.diagnostics) == 30

    def test_levels_stay_consistent_after_recovery(self):
        events, _ = lenient_parse(
            "<a><x><1bad/><y/></x></a>", RecoveryPolicy.REPAIR
        )
        validate_events(events)
        by_tag = {e.tag: e.level for e in events if isinstance(e, StartElement)}
        assert by_tag == {"a": 1, "x": 2, "y": 3}


class TestProcessorIntegration:
    def test_stream_recovers_and_still_matches(self):
        from repro import XPathStream

        stream = XPathStream("//b", policy="repair")
        stream.feed_text("<a><1junk/><b/><b>")  # truncated: second b unclosed
        ids = stream.close()
        assert len(ids) == 2
        assert stream.diagnostics == []  # tokenizer detached after close

    def test_diagnostic_callback_threaded(self):
        from repro import XPathStream

        seen: list[StreamDiagnostic] = []
        stream = XPathStream("//b", policy="skip", on_diagnostic=seen.append)
        stream.feed_text("<a><1junk/><b/></a>")
        stream.close()
        assert seen and seen[0].action == ACTION_SKIPPED
