"""Tests for the pure-Python incremental XML tokenizer."""

import io

import pytest

from repro.errors import XmlSyntaxError
from repro.stream.events import Characters, EndElement, StartElement
from repro.stream.tokenizer import (
    XmlTokenizer,
    events_from,
    parse_chunks,
    parse_file,
    parse_string,
)


def kinds(events):
    return [type(event).__name__ for event in events]


class TestBasicParsing:
    def test_single_element(self):
        events = list(parse_string("<a></a>"))
        assert events == [StartElement("a", 1, 1, {}), EndElement("a", 1)]

    def test_self_closing(self):
        events = list(parse_string("<a/>"))
        assert events == [StartElement("a", 1, 1, {}), EndElement("a", 1)]

    def test_nesting_levels(self):
        events = list(parse_string("<a><b><c/></b></a>"))
        starts = [e for e in events if isinstance(e, StartElement)]
        assert [(e.tag, e.level) for e in starts] == [("a", 1), ("b", 2), ("c", 3)]

    def test_preorder_ids(self):
        events = list(parse_string("<a><b/><c><d/></c></a>"))
        starts = [e for e in events if isinstance(e, StartElement)]
        assert [(e.tag, e.node_id) for e in starts] == [
            ("a", 1), ("b", 2), ("c", 3), ("d", 4),
        ]

    def test_text_content(self):
        events = list(parse_string("<a>hello</a>"))
        assert events[1] == Characters("hello", 1)

    def test_whitespace_skipped_by_default(self):
        events = list(parse_string("<a>\n  <b/>\n</a>"))
        assert kinds(events) == ["StartElement", "StartElement", "EndElement", "EndElement"]

    def test_whitespace_kept_on_request(self):
        events = list(parse_string("<a> <b/> </a>", skip_whitespace=False))
        assert kinds(events) == [
            "StartElement", "Characters", "StartElement",
            "EndElement", "Characters", "EndElement",
        ]

    def test_text_level_is_containing_element(self):
        events = list(parse_string("<a><b>t</b></a>"))
        chars = [e for e in events if isinstance(e, Characters)]
        assert chars == [Characters("t", 2)]

    def test_sibling_elements(self):
        starts = [e for e in parse_string("<r><a/><a/><a/></r>")
                  if isinstance(e, StartElement)]
        assert [e.node_id for e in starts] == [1, 2, 3, 4]


class TestAttributes:
    def test_double_and_single_quotes(self):
        (start, _end) = parse_string("<a x=\"1\" y='2'/>")
        assert start.attributes == {"x": "1", "y": "2"}

    def test_whitespace_around_equals(self):
        (start, _end) = parse_string("<a x = '1'/>")
        assert start.attributes == {"x": "1"}

    def test_entity_in_attribute(self):
        (start, _end) = parse_string("<a x='a&amp;b'/>")
        assert start.attributes == {"x": "a&b"}

    def test_gt_inside_attribute_value(self):
        (start, _end) = parse_string("<a x='1>2'/>")
        assert start.attributes == {"x": "1>2"}

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(XmlSyntaxError, match="duplicate"):
            list(parse_string("<a x='1' x='2'/>"))

    def test_unquoted_value_rejected(self):
        with pytest.raises(XmlSyntaxError, match="unquoted"):
            list(parse_string("<a x=1/>"))

    def test_missing_value_rejected(self):
        with pytest.raises(XmlSyntaxError, match="no value"):
            list(parse_string("<a x></a>"))


class TestEntities:
    @pytest.mark.parametrize(
        "raw, decoded",
        [
            ("&amp;", "&"),
            ("&lt;", "<"),
            ("&gt;", ">"),
            ("&apos;", "'"),
            ("&quot;", '"'),
            ("&#65;", "A"),
            ("&#x41;", "A"),
        ],
    )
    def test_predefined_and_numeric(self, raw, decoded):
        events = list(parse_string(f"<a>{raw}</a>"))
        assert events[1].text == decoded

    def test_mixed_text_and_entities(self):
        events = list(parse_string("<a>x &amp; y</a>"))
        assert events[1].text == "x & y"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XmlSyntaxError, match="unknown entity"):
            list(parse_string("<a>&nope;</a>"))

    def test_bad_char_reference_rejected(self):
        with pytest.raises(XmlSyntaxError, match="bad character reference"):
            list(parse_string("<a>&#xZZ;</a>"))


class TestMiscMarkup:
    def test_xml_declaration_skipped(self):
        events = list(parse_string("<?xml version='1.0'?><a/>"))
        assert kinds(events) == ["StartElement", "EndElement"]

    def test_comment_skipped(self):
        events = list(parse_string("<a><!-- note --><b/></a>"))
        assert kinds(events) == ["StartElement", "StartElement", "EndElement", "EndElement"]

    def test_double_dash_in_comment_rejected(self):
        with pytest.raises(XmlSyntaxError, match="comment"):
            list(parse_string("<a><!-- x -- y --></a>"))

    def test_processing_instruction_skipped(self):
        events = list(parse_string("<a><?pi data?></a>"))
        assert kinds(events) == ["StartElement", "EndElement"]

    def test_cdata_is_raw_text(self):
        events = list(parse_string("<a><![CDATA[<not&markup>]]></a>"))
        assert events[1].text == "<not&markup>"

    def test_doctype_skipped(self):
        events = list(parse_string("<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>"))
        assert kinds(events) == ["StartElement", "EndElement"]

    def test_doctype_without_subset(self):
        events = list(parse_string('<!DOCTYPE html SYSTEM "x.dtd"><a/>'))
        assert kinds(events) == ["StartElement", "EndElement"]


class TestErrors:
    def test_mismatched_close(self):
        with pytest.raises(XmlSyntaxError, match="does not match"):
            list(parse_string("<a></b>"))

    def test_text_outside_root(self):
        with pytest.raises(XmlSyntaxError, match="outside"):
            list(parse_string("junk<a/>"))

    def test_second_root(self):
        with pytest.raises(XmlSyntaxError, match="second document element"):
            list(parse_string("<a/><b/>"))

    def test_unclosed_element(self):
        with pytest.raises(XmlSyntaxError, match="still open"):
            list(parse_string("<a><b></b>"))

    def test_empty_input(self):
        with pytest.raises(XmlSyntaxError, match="no element"):
            list(parse_string(""))

    def test_bad_tag_name(self):
        with pytest.raises(XmlSyntaxError, match="malformed tag name"):
            list(parse_string("<1a/>"))

    def test_lt_inside_tag(self):
        with pytest.raises(XmlSyntaxError, match="inside a tag"):
            list(parse_string("<a <b/>"))

    def test_error_carries_position(self):
        with pytest.raises(XmlSyntaxError) as info:
            list(parse_string("<a>\n<b></c></a>"))
        assert info.value.line == 2

    def test_end_tag_without_open(self):
        with pytest.raises(XmlSyntaxError, match="without open element"):
            list(parse_string("</a>"))


class TestIncrementalFeeding:
    def test_chunked_equals_whole(self):
        xml = "<root a='1'><x>text &amp; more</x><!--c--><y/></root>"
        whole = list(parse_string(xml))
        for size in (1, 2, 3, 7):
            chunks = [xml[i:i + size] for i in range(0, len(xml), size)]
            assert list(parse_chunks(chunks)) == whole, f"chunk size {size}"

    def test_entity_split_across_chunks(self):
        events = list(parse_chunks(["<a>x&a", "mp;y</a>"]))
        assert events[1].text == "x&y"

    def test_tag_split_across_chunks(self):
        events = list(parse_chunks(["<roo", "t><a", "/></root>"]))
        starts = [e.tag for e in events if isinstance(e, StartElement)]
        assert starts == ["root", "a"]

    def test_comment_split_across_chunks(self):
        events = list(parse_chunks(["<a><!-", "- hi --", "><b/></a>"]))
        assert kinds(events) == ["StartElement", "StartElement", "EndElement", "EndElement"]

    def test_feed_after_close_rejected(self):
        tokenizer = XmlTokenizer()
        list(tokenizer.feed("<a/>"))
        tokenizer.close()
        with pytest.raises(XmlSyntaxError, match="after close"):
            list(tokenizer.feed("<b/>"))

    def test_close_is_idempotent(self):
        tokenizer = XmlTokenizer()
        list(tokenizer.feed("<a/>"))
        tokenizer.close()
        tokenizer.close()

    def test_depth_property(self):
        tokenizer = XmlTokenizer()
        list(tokenizer.feed("<a><b>"))
        assert tokenizer.depth == 2

    def test_buffer_is_compacted_between_feeds(self):
        tokenizer = XmlTokenizer()
        list(tokenizer.feed("<a>" + "x" * 10_000))
        # Text was emitted; only an empty (or tiny) tail may remain.
        assert len(tokenizer._buffer) < 100


class TestSourceDispatch:
    def test_events_from_xml_text(self):
        assert kinds(events_from("<a/>")) == ["StartElement", "EndElement"]

    def test_events_from_path(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text("<a><b/></a>")
        assert len(list(events_from(str(path)))) == 4

    def test_events_from_file_object(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text("<a/>")
        with open(path) as handle:
            assert kinds(events_from(handle)) == ["StartElement", "EndElement"]

    def test_events_from_chunk_iterable(self):
        assert kinds(events_from(iter(["<a", "/>"]))) == ["StartElement", "EndElement"]

    def test_events_from_event_iterable_passthrough(self):
        events = list(parse_string("<a/>"))
        assert list(events_from(iter(events))) == events

    def test_parse_file_small_chunks(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text("<a>" + "<b>t</b>" * 50 + "</a>")
        whole = list(parse_file(path))
        chunked = list(parse_file(path, chunk_size=3))
        assert chunked == whole

    def test_stringio_source(self):
        handle = io.StringIO("<a/>")
        assert kinds(events_from(handle)) == ["StartElement", "EndElement"]
