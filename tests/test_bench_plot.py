"""Tests for the SVG figure renderer (repro.bench.plot).

The output is XML, so the library's own tokenizer validates it — a
pleasing dogfooding loop.
"""

import pytest

from repro.bench.plot import (
    PALETTE,
    _nice_max,
    bar_chart,
    figure_to_svg,
    line_chart,
)
from repro.stream.events import StartElement
from repro.stream.tokenizer import parse_string


def svg_events(svg: str):
    return [e for e in parse_string(svg) if isinstance(e, StartElement)]


class TestNiceMax:
    @pytest.mark.parametrize(
        "value, expected",
        [(0.7, 1.0), (1.0, 1.0), (1.4, 2.0), (3.0, 5.0), (7.2, 10.0),
         (94, 100.0), (0.034, 0.05), (0, 1.0)],
    )
    def test_rounding(self, value, expected):
        assert _nice_max(value) == pytest.approx(expected)


class TestBarChart:
    def test_well_formed_xml(self):
        svg = bar_chart("t", ["Q1", "Q2"], {"A": [1.0, 2.0], "B": [2.0, None]}, "s")
        events = svg_events(svg)
        assert events[0].tag == "svg"

    def test_one_rect_per_value_missing_bars_absent(self):
        svg = bar_chart("t", ["Q1", "Q2"], {"A": [1.0, 2.0], "B": [2.0, None]}, "s")
        bars = [e for e in svg_events(svg)
                if e.tag == "rect" and e.attributes.get("fill", "").startswith("#")
                and e.attributes["fill"] != "white"
                and e.attributes.get("height") not in ("10",)]
        # 3 data bars (one missing) — filter legend swatches by height.
        data_bars = [b for b in bars if float(b.attributes["height"]) > 0
                     and b.attributes.get("width") not in ("10",)]
        assert len(data_bars) == 3

    def test_group_labels_present(self):
        svg = bar_chart("t", ["Q1", "Q9"], {"A": [1.0, 1.0]}, "s")
        assert ">Q1<" in svg and ">Q9<" in svg

    def test_title_escaped(self):
        svg = bar_chart("a < b", ["g"], {"A": [1.0]}, "s")
        assert "a &lt; b" in svg


class TestLineChart:
    def test_well_formed_xml(self):
        svg = line_chart("t", [1, 2, 4], {"A": [1.0, 2.0, 4.0]}, "x", "y")
        assert svg_events(svg)[0].tag == "svg"

    def test_markers_per_point(self):
        svg = line_chart("t", [1, 2, 4], {"A": [1.0, 2.0, 4.0], "B": [2.0, None, 8.0]},
                         "x", "y")
        circles = [e for e in svg_events(svg) if e.tag == "circle"]
        assert len(circles) == 5  # one None skipped

    def test_none_breaks_the_line(self):
        svg = line_chart("t", [1, 2, 3, 4],
                         {"A": [1.0, 2.0, None, 4.0]}, "x", "y")
        polylines = [e for e in svg_events(svg) if e.tag == "polyline"]
        assert len(polylines) == 1  # only the 2-point run qualifies

    def test_palette_cycles(self):
        series = {f"s{i}": [1.0] * 2 for i in range(len(PALETTE) + 2)}
        svg = line_chart("t", [1, 2], series, "x", "y")
        assert PALETTE[0] in svg


class TestFigurePayloads:
    def test_time_grid_payload(self):
        payload = {
            "figure": "7a", "profile": "tiny", "dataset": "book",
            "cells": [
                {"row": "Q1", "column": "TwigM", "supported": True,
                 "seconds": 0.1, "runs": [0.1], "results": 5},
                {"row": "Q1", "column": "XMLTK*", "supported": False},
            ],
        }
        svg = figure_to_svg(payload)
        assert "Figure 7a" in svg and svg_events(svg)

    def test_memory_grid_payload_scaled_to_mb(self):
        payload = {
            "figure": "8c", "profile": "tiny", "dataset": "protein",
            "cells": [
                {"row": "Q1", "column": "TwigM", "supported": True,
                 "peak_bytes": 2 * 1024 * 1024, "results": 5},
            ],
        }
        svg = figure_to_svg(payload)
        assert "MB" in svg

    def test_figure9_returns_chart_per_query(self):
        payload = {
            "figure": "9", "profile": "tiny",
            "queries": {
                "Q1": [
                    {"row": "x1", "column": "TwigM", "supported": True,
                     "seconds": 0.1, "runs": [0.1], "results": 1},
                    {"row": "x2", "column": "TwigM", "supported": True,
                     "seconds": 0.2, "runs": [0.2], "results": 1},
                ],
            },
        }
        charts = figure_to_svg(payload)
        assert set(charts) == {"Q1"}
        assert "Figure 9" in charts["Q1"]

    def test_scaling_payload(self):
        payload = {
            "figure": "A", "profile": "small",
            "series": [
                {"label": "TwigM operations", "sizes": [10, 20],
                 "costs": [100, 200], "exponent": 1.0},
            ],
        }
        svg = figure_to_svg(payload)
        assert "k=1.00" in svg

    def test_tabular_figures_rejected(self):
        with pytest.raises(ValueError, match="tabular"):
            figure_to_svg({"figure": "5"})


class TestCliSvgFlag:
    def test_svg_output(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path / "cache"))
        from repro.bench.cli import main as bench_main

        out = tmp_path / "figs"
        code = bench_main(["--figure", "7a", "--profile", "tiny",
                           "--repeats", "1", "--svg", str(out)])
        assert code == 0
        svg_file = out / "fig7a.svg"
        assert svg_file.exists()
        list(parse_string(svg_file.read_text()))  # valid XML
