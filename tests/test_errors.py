"""Tests for the exception hierarchy (repro.errors)."""

import pytest

from repro.errors import (
    ReproError,
    StreamStateError,
    UnsupportedQueryError,
    XmlSyntaxError,
    XPathSyntaxError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [XmlSyntaxError, XPathSyntaxError, UnsupportedQueryError, StreamStateError],
    )
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)
        assert issubclass(exc_type, Exception)

    def test_one_catch_covers_the_api(self):
        """An API boundary can catch ReproError alone."""
        from repro.core.processor import evaluate

        for bad_call in (
            lambda: evaluate("//a[", "<a/>"),
            lambda: evaluate("//a", "<a><b></a>"),
        ):
            with pytest.raises(ReproError):
                bad_call()


class TestMessages:
    def test_xml_error_position_formatting(self):
        error = XmlSyntaxError("boom", line=3, column=7)
        assert str(error) == "boom at line 3, column 7"
        assert error.line == 3 and error.column == 7

    def test_xml_error_line_only(self):
        assert str(XmlSyntaxError("boom", line=3)) == "boom at line 3"

    def test_xml_error_no_position(self):
        error = XmlSyntaxError("boom")
        assert str(error) == "boom"
        assert error.line is None

    def test_xpath_error_position(self):
        error = XPathSyntaxError("bad token", position=5)
        assert "position 5" in str(error)
        assert error.position == 5

    def test_xpath_error_no_position(self):
        assert str(XPathSyntaxError("bad")) == "bad"
