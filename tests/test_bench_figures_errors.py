"""Error-path tests for the figure drivers: engines that crash mid-run
become 'err' cells, exactly like the paper's 'the system reports errors
for missing points'."""

import pytest

from repro.baselines.common import Engine
from repro.bench import figures
from repro.bench.harness import Cell
from repro.bench.queries import QuerySpec
from repro.bench.report import render_grid
from repro.errors import ReproError


class _ExplodingEngine(Engine):
    name = "Kaboom"
    streaming = True

    def supports(self, query):
        return True

    def run(self, query, events):
        raise ReproError("synthetic failure")


class _RecursionEngine(Engine):
    name = "Spiral"

    def supports(self, query):
        return True

    def run(self, query, events):
        raise RecursionError


class _FakeCorpus:
    def events(self):
        return iter(())


SPEC = QuerySpec("QX", "//a", "XP{/,//,*}")


class TestErrorCells:
    def test_repro_error_becomes_error_cell(self):
        cell = figures._run_cell(_ExplodingEngine(), SPEC, _FakeCorpus(), "time", 1)
        assert cell.supported and cell.error == "synthetic failure"

    def test_recursion_error_becomes_error_cell(self):
        cell = figures._run_cell(_RecursionEngine(), SPEC, _FakeCorpus(), "time", 1)
        assert cell.error == "recursion limit"

    def test_memory_kind_also_guarded(self):
        cell = figures._run_cell(_ExplodingEngine(), SPEC, _FakeCorpus(), "memory", 1)
        assert cell.error is not None

    def test_error_cells_render_as_err(self):
        from repro.bench.harness import Grid

        grid = Grid(title="t")
        grid.put("QX", "Kaboom", Cell(supported=True, error="boom"))
        assert "err" in render_grid(grid, "time")

    def test_unsupported_query_becomes_missing_bar(self):
        class Refuses(Engine):
            name = "No"

            def supports(self, query):
                return False

        cell = figures._run_cell(Refuses(), SPEC, _FakeCorpus(), "time", 1)
        assert not cell.supported
