"""Integration tests: every example script runs to completion.

Examples are the library's living documentation; a broken one is a bug.
Each is executed in-process (importing its module and calling its entry
point with scaled-down parameters where available) so failures carry
real tracebacks, not just exit codes.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples.{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)  # module-level code only defines things
    return module


class TestExamplesRun:
    def test_quickstart(self, capsys):
        module = load_example("quickstart")
        module.one_shot()
        module.fragments()
        module.engine_dispatch()
        module.push_style()
        module.error_handling()
        out = capsys.readouterr().out
        assert "cheap books" in out
        assert "query error" in out

    def test_stock_feed_monitor(self, capsys):
        module = load_example("stock_feed_monitor")
        module.main(n_ticks=60, seed=3)
        out = capsys.readouterr().out
        assert "alerts" in out

    def test_recursive_documents_measure(self, capsys):
        module = load_example("recursive_documents")
        row = module.measure(30)
        assert row["matches"] == 900
        assert row["twigm_peak"] <= 2 * 30 + 2
        assert row["explicit_peak"] >= 900

    def test_auction_watch(self, capsys):
        module = load_example("auction_watch")
        module.main(scale=0.5)
        out = capsys.readouterr().out
        assert "auction site" in out
        assert "—" in out  # unsupported cells shown

    def test_machine_tour(self, capsys):
        module = load_example("machine_tour")
        module.pathm_example()
        module.branchm_example()
        module.twigm_example()
        module.boolean_example()
        out = capsys.readouterr().out
        assert "PathM" in out and "TwigM" in out
        assert "solutions" in out

    def test_protein_annotations_pieces(self, capsys, tmp_path):
        module = load_example("protein_annotations")
        corpus = module.build_corpus(tmp_path, 40)
        module.describe(corpus)
        module.count_by_organism(corpus)
        module.fragments_of_collaborations(corpus)
        out = capsys.readouterr().out
        assert "entries" in out

    def test_all_examples_are_covered(self):
        """A new example script must get a runner test here."""
        scripts = {path.stem for path in EXAMPLES_DIR.glob("*.py")}
        covered = {
            "quickstart", "stock_feed_monitor", "recursive_documents",
            "auction_watch", "machine_tour", "protein_annotations",
        }
        assert scripts == covered, f"uncovered examples: {scripts - covered}"
