"""Tests for the eager-emission optimisation.

When no trunk ancestor of the return node carries predicates, a
satisfied return entry is already a solution (Proposition 4.2: stacks
hold prefix-subquery solutions), so TwigM emits at the return element's
end tag instead of buffering candidates until the root closes.
"""

import pytest

from repro.core.fragments import FragmentCapture
from repro.core.machine import build_machine
from repro.core.results import CallbackSink
from repro.core.twigm import TwigM
from repro.stream.tokenizer import parse_string
from repro.xpath.querytree import compile_query


def machine_for(query):
    return build_machine(compile_query(query))


class TestEagerDetection:
    @pytest.mark.parametrize(
        "query, eager",
        [
            ("//a//b", True),                 # no predicates anywhere
            ("//a/b[c]", True),               # predicates only on the return
            ("//a//b[c[d]][@x]", True),       # ...however complex
            ("//b[. = 'x']", True),           # root == return
            ("//a[d]//b", False),             # predicate above
            ("//a[@x]/b/c", False),           # attribute predicate above
            ("//a[. = '1']//b", False),       # value test above
            ("//a[x or y]/b", False),         # boolean condition above
            ("//a[d]//b[e]//c", False),       # the paper's Q1
        ],
    )
    def test_flag(self, query, eager):
        assert machine_for(query).eager_return is eager


class TestEagerLatency:
    def test_emission_at_return_close_not_root_close(self):
        emitted = []
        machine = TwigM("//a/b[c]", sink=CallbackSink(emitted.append))
        events = list(parse_string("<a><b><c/></b><x><y/></x></a>"))
        machine.feed(events[:5])  # through </b>
        assert emitted == [2], "must not wait for </a>"

    def test_non_eager_waits_for_root(self):
        emitted = []
        machine = TwigM("//a[d]/b", sink=CallbackSink(emitted.append))
        events = list(parse_string("<a><b/><d/></a>"))
        machine.feed(events[:3])  # through <d/>'s start... b closed already
        assert emitted == []
        machine.feed(events[3:])
        assert emitted == [2]

    def test_no_candidate_buffering_in_eager_mode(self):
        """Eager queries never accumulate candidate sets above the return
        node — the root stack entries stay candidate-free."""
        machine = TwigM("//a//b[c]")
        events = list(parse_string("<a><b><c/></b><b><c/></b><x/></a>"))
        machine.feed(events[:-1])  # keep <a> open
        (root_entry,) = machine.stack_of(machine.machine.root)
        assert root_entry.candidates is None
        assert sorted(machine.results) == [2, 4]


class TestEagerCorrectness:
    CASES = [
        ("//a//b", "<a><b><b/></b></a>", [2, 3]),
        ("//a/b[c]", "<a><b><c/></b><b/></a>", [2]),
        ("//b[@x]", "<r><b x='1'/><b/></r>", [2]),
        ("//a//b[c][d]", "<a><b><c/><d/></b><b><c/></b></a>", [2]),
    ]

    @pytest.mark.parametrize("query, xml, expected", CASES)
    def test_results(self, query, xml, expected):
        assert sorted(TwigM(query).run(parse_string(xml))) == expected

    def test_fragments_flush_eagerly(self):
        capture = FragmentCapture("//a/b[c]")
        events = list(parse_string("<a><b><c/>t</b><later/></a>"))
        capture.feed(events[:6])  # through </b>
        assert [f for _i, f in capture.fragments] == ["<b><c/>t</b>"]
        assert capture.buffered_candidates == 0

    def test_nested_eager_matches_each_emit(self):
        machine = TwigM("//b")
        machine.feed(parse_string("<a><b><b/></b></a>"))
        assert sorted(machine.results) == [2, 3]


class TestEagerOverride:
    def test_force_off_reverts_to_root_close(self):
        emitted = []
        machine = TwigM("//a/b[c]", sink=CallbackSink(emitted.append), eager=False)
        events = list(parse_string("<a><b><c/></b></a>"))
        machine.feed(events[:5])  # through </b>
        assert emitted == []
        machine.feed(events[5:])  # </a>
        assert emitted == [2]

    def test_results_identical_either_way(self):
        xml = "<a><b><c/></b><b/><b><c/></b></a>"
        eager = TwigM("//a/b[c]").run(parse_string(xml))
        lazy = TwigM("//a/b[c]", eager=False).run(parse_string(xml))
        assert sorted(eager) == sorted(lazy)

    def test_forcing_on_when_unsound_is_rejected(self):
        from repro.errors import UnsupportedQueryError

        with pytest.raises(UnsupportedQueryError, match="unsound"):
            TwigM("//a[d]/b", eager=True)
