"""Tests for the streaming rewrite engine (repro.transform.rewrite)."""

import json

import pytest

from repro.errors import CheckpointError, TransformError
from repro.stream.events import EventCollector
from repro.transform.rewrite import (
    RewriteEngine,
    RewriteRule,
    callback,
    drop,
    extract,
    rename,
    replace,
    rewrite_string,
    wrap,
)

DOC = (
    '<catalog><book id="1"><title>First</title><price>29</price></book>'
    '<book id="2"><title>Second</title><price>45</price></book>'
    "<note>keep</note></catalog>"
)


class TestActions:
    def test_drop(self):
        assert rewrite_string(DOC, [drop("//book")]) == (
            "<catalog><note>keep</note></catalog>"
        )

    def test_rename(self):
        out = rewrite_string("<r><a>x</a></r>", [rename("//a", "b")])
        assert out == "<r><b>x</b></r>"

    def test_rename_keeps_attributes(self):
        out = rewrite_string('<r><a k="v">x</a></r>', [rename("//a", "b")])
        assert out == '<r><b k="v">x</b></r>'

    def test_wrap(self):
        out = rewrite_string("<r><a>x</a></r>", [wrap("//a", "w")])
        assert out == "<r><w><a>x</a></w></r>"

    def test_wrap_with_attributes(self):
        out = rewrite_string(
            "<r><a/></r>", [wrap("//a", "w", k="v")]
        )
        assert out == '<r><w k="v"><a/></w></r>'

    def test_replace(self):
        out = rewrite_string(
            "<r><a>secret</a><b/></r>", [replace("//a", "<redacted/>")]
        )
        assert out == "<r><redacted/><b/></r>"

    def test_replace_with_subtree(self):
        out = rewrite_string(
            "<r><a/></r>", [replace("//a", "<x><y>t</y></x>")]
        )
        assert out == "<r><x><y>t</y></x></r>"

    def test_callback_transforms_events(self):
        def upper(events):
            for event in events:
                if hasattr(event, "text"):
                    yield type(event)(event.text.upper(), event.level)
                else:
                    yield event

        out = rewrite_string("<r><a>hi</a></r>", [callback("//a", upper)])
        assert out == "<r><a>HI</a></r>"

    def test_extract_action_delivers_and_drops(self):
        sink = EventCollector()
        out = rewrite_string("<r><a>x</a><b/></r>", [extract("//a", sink)])
        assert out == "<r><b/></r>"
        assert sink.events[0].tag == "a"
        assert sink.events[0].level == 1
        assert sink.events[0].node_id == 1

    def test_unmatched_stream_passes_through(self):
        out = rewrite_string(DOC, [drop("//missing")])
        assert out == DOC


class TestPredicates:
    def test_deferred_rule_buffers_until_verdict(self):
        out = rewrite_string(
            "<r><a><b/></a><a/></r>", [drop("//a[b]")]
        )
        assert out == "<r><a/></r>"

    def test_value_test_rule(self):
        out = rewrite_string(
            DOC, [drop('//book[title = "Second"]')]
        )
        assert "Second" not in out
        assert "First" in out


class TestPriority:
    def test_first_rule_wins(self):
        out = rewrite_string(
            "<r><a/></r>", [rename("//a", "first"), rename("//a", "second")]
        )
        assert out == "<r><first/></r>"

    def test_deferred_rule_outranks_later_immediate(self):
        out = rewrite_string(
            "<r><a><b/></a><a/></r>",
            [drop("//a[b]"), rename("//a", "z")],
        )
        assert out == "<r><z/></r>"

    def test_immediate_fallback_when_deferred_says_no(self):
        out = rewrite_string(
            "<r><a/></r>", [drop("//a[b]"), rename("//a", "z")]
        )
        assert out == "<r><z/></r>"

    def test_rules_fired_counts(self):
        engine = RewriteEngine([rename("//a", "z"), drop("//b")])
        engine.evaluate_push("<r><a/><b/><a/></r>")
        assert engine.rules_fired == [2, 1]


class TestNesting:
    def test_rule_inside_dropped_subtree_is_inert(self):
        out = rewrite_string(
            "<r><a><b/></a></r>", [drop("//a"), rename("//b", "z")]
        )
        assert out == "<r/>"

    def test_nested_matches_of_one_rule(self):
        out = rewrite_string(
            "<r><a><a>x</a></a></r>", [wrap("//a[a]", "outer")]
        )
        assert out == "<r><outer><a><a>x</a></a></outer></r>"

    def test_rename_then_inner_wrap(self):
        out = rewrite_string(
            "<r><a><b/></a></r>", [rename("//a", "z"), wrap("//b", "w")]
        )
        assert out == "<r><z><w><b/></w></z></r>"

    def test_output_not_rematched(self):
        # rename a->b does not trigger the b rule on its own output.
        out = rewrite_string(
            "<r><a/><b/></r>", [rename("//a", "b"), drop("//b")]
        )
        assert out == "<r><b/></r>"


class TestIdempotence:
    @pytest.mark.parametrize("rules", [
        [drop("//secret")],
        [rename("//old", "new")],
        [drop("//a[b]"), rename("//c", "d")],
    ])
    def test_second_pass_is_identity(self, rules):
        doc = ("<r><secret>x</secret><old>y</old><a><b/></a>"
               "<c/><keep/></r>")
        once = rewrite_string(doc, rules)
        assert rewrite_string(once, rules) == once


class TestPullPushIdentity:
    @pytest.mark.parametrize("rules", [
        [drop("//book")],
        [rename("//title", "name")],
        [drop('//book[title = "Second"]'), wrap("//note", "meta")],
    ])
    def test_byte_identical(self, rules):
        specs = [rule.spec() for rule in rules]
        pull = RewriteEngine(
            [RewriteRule.from_spec(s) for s in specs]).evaluate(DOC)
        push = RewriteEngine(
            [RewriteRule.from_spec(s) for s in specs]).evaluate_push(DOC)
        assert pull == push


class TestOutputHandler:
    def test_events_mode_renormalizes(self):
        collector = EventCollector()
        engine = RewriteEngine([drop("//book")], output=collector)
        engine.evaluate_push(DOC)
        events = collector.events
        # Levels and ids are recomputed for the transformed stream.
        starts = [e for e in events if hasattr(e, "node_id")]
        assert [e.node_id for e in starts] == list(
            range(1, len(starts) + 1))
        assert starts[0].level == 1

    def test_on_chunk_streams(self):
        chunks = []
        engine = RewriteEngine([drop("//book")], on_chunk=chunks.append,
                               chunk_size=4)
        engine.evaluate_push(DOC)
        assert "".join(chunks) == "<catalog><note>keep</note></catalog>"


class TestSnapshotRestore:
    def test_mid_stream_snapshot_resumes_exactly(self):
        rules = [drop('//book[title = "Second"]'), wrap("//note", "meta")]
        expected = RewriteEngine(
            [RewriteRule.from_spec(r.spec()) for r in rules]
        ).evaluate_push(DOC)

        engine = RewriteEngine(rules)
        cut = DOC.index("<price>45")  # inside an undecided subtree
        engine.feed_text(DOC[:cut])
        blob = json.loads(json.dumps(engine.snapshot()))

        restored = RewriteEngine.restore(blob)
        restored.feed_text(DOC[cut:])
        assert restored.close() == expected

    def test_callback_rule_needs_function_on_restore(self):
        engine = RewriteEngine([callback("//a", lambda ev: ev)])
        engine.feed_text("<r>")
        blob = engine.snapshot()
        with pytest.raises(CheckpointError):
            RewriteEngine.restore(blob)
        restored = RewriteEngine.restore(
            blob, callbacks={0: lambda ev: ev})
        restored.feed_text("<a>x</a></r>")
        assert restored.close() == "<r><a>x</a></r>"


class TestValidation:
    def test_no_rules_rejected(self):
        with pytest.raises(TransformError):
            RewriteEngine([])

    def test_unknown_action_rejected(self):
        with pytest.raises(TransformError):
            RewriteRule("//a", "explode")

    def test_rename_needs_target(self):
        with pytest.raises(TransformError):
            RewriteRule("//a", "rename")

    def test_replace_needs_xml(self):
        with pytest.raises(TransformError):
            RewriteRule("//a", "replace", replacement="<oops>")

    def test_callback_must_keep_nesting(self):
        def truncate(events):
            return list(events)[:-1]  # drops the closing end tag

        engine = RewriteEngine([callback("//a", truncate)])
        with pytest.raises(TransformError):
            engine.evaluate_push("<r><a>x</a></r>")

    def test_truncated_input_detected(self):
        from repro.stream.events import StartElement

        engine = RewriteEngine([drop("//a[b]")])
        # A truncated event stream (no tokenizer): the undecided hole for
        # <a> can never resolve.
        engine.feed_events([
            StartElement("r", 1, 1, {}),
            StartElement("a", 2, 2, {}),
        ])
        with pytest.raises(TransformError):
            engine.close()
