"""Tests for the public API (repro.core.processor)."""

import pytest

from repro.core.branchm import BranchM
from repro.core.pathm import PathM
from repro.core.processor import XPathStream, evaluate, select_engine_class
from repro.core.twigm import TwigM
from repro.errors import XPathSyntaxError
from repro.stream.tokenizer import parse_string
from repro.xpath.querytree import compile_query


class TestFragmentDispatch:
    @pytest.mark.parametrize(
        "query, engine_class",
        [
            ("//a//b", PathM),
            ("/a/*/b", PathM),
            ("/a[b]/c", BranchM),
            ("/a[@id]/c", BranchM),
            ("//a[b]", TwigM),
            ("//a[b]//*", TwigM),
        ],
    )
    def test_cheapest_machine_selected(self, query, engine_class):
        assert select_engine_class(compile_query(query)) is engine_class
        assert isinstance(XPathStream(query).engine, engine_class)

    def test_engine_name(self):
        assert XPathStream("//a//b").engine_name == "pathm"
        assert XPathStream("//a[b]").engine_name == "twigm"

    def test_engine_override(self):
        stream = XPathStream("//a//b", engine="twigm")
        assert isinstance(stream.engine, TwigM)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            XPathStream("//a", engine="warp")

    def test_override_must_support_fragment(self):
        from repro.errors import UnsupportedQueryError

        with pytest.raises(UnsupportedQueryError):
            XPathStream("//a[b]", engine="pathm")


class TestEvaluation:
    def test_evaluate_from_xml_text(self):
        assert evaluate("//b", "<a><b/></a>") == [2]

    def test_evaluate_from_path(self, tmp_path):
        path = tmp_path / "d.xml"
        path.write_text("<a><b/><b/></a>")
        assert evaluate("//b", str(path)) == [2, 3]

    def test_evaluate_from_events(self):
        events = parse_string("<a><b/></a>")
        assert evaluate("//b", events) == [2]

    def test_all_three_engines_agree(self, book_catalog_xml):
        for query in ("//book//title", "/catalog/book[price]/title"):
            results = {
                engine: XPathStream(query, engine=engine).evaluate(book_catalog_xml)
                for engine in ("twigm",)
            }
            auto = XPathStream(query).evaluate(book_catalog_xml)
            assert all(sorted(r) == sorted(auto) for r in results.values())


class TestPushStyle:
    def test_feed_text_chunks(self):
        stream = XPathStream("//b[c]")
        xml = "<a><b><c/></b><b/></a>"
        for index in range(0, len(xml), 4):
            stream.feed_text(xml[index:index + 4])
        assert stream.close() == [2]

    def test_on_match_callback(self):
        seen = []
        stream = XPathStream("//b", on_match=seen.append)
        stream.feed_text("<a><b/><b/>")
        assert seen == [2, 3]
        stream.feed_text("</a>")
        stream.close()

    def test_results_unavailable_with_callback(self):
        stream = XPathStream("//b", on_match=lambda i: None)
        with pytest.raises(AttributeError):
            stream.results

    def test_reset_allows_new_document(self):
        stream = XPathStream("//b[c]")
        assert stream.evaluate("<a><b><c/></b></a>") == [2]
        stream.reset()
        assert stream.evaluate("<a><x/><b><c/></b></a>") == [3]

    def test_close_without_feeding_is_safe(self):
        assert XPathStream("//a").close() == []


class TestErrors:
    def test_bad_query_raises_at_construction(self):
        with pytest.raises(XPathSyntaxError):
            XPathStream("//a[")

    def test_query_tree_accepted(self):
        tree = compile_query("//b")
        assert XPathStream(tree).evaluate("<a><b/></a>") == [2]
