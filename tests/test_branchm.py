"""Tests for BranchM (repro.core.branchm, §3.2)."""

import pytest

from repro.core.branchm import BranchM, evaluate_branchm
from repro.errors import UnsupportedQueryError
from repro.stream.tokenizer import parse_string


def run(query, xml):
    return evaluate_branchm(query, parse_string(xml))


class TestPaperExample:
    def test_figure_3_execution(self):
        """Q3 = /a[d]/b[e]/c over figure 3(a): c₁ is the solution."""
        xml = "<a><b><c/><e/></b><d/></a>"
        assert run("/a[d]/b[e]/c", xml) == [3]

    def test_predicate_arrives_after_candidate(self):
        """c is a candidate long before d decides its fate."""
        xml = "<a><b><c/></b><d/></a>"
        assert run("/a[d]/b/c", xml) == [3]

    def test_failed_predicate_discards_candidates(self):
        xml = "<a><b><c/></b></a>"
        assert run("/a[d]/b/c", xml) == []


class TestPredicates:
    def test_multiple_predicates_conjunction(self):
        assert run("/a[b][c]/d", "<a><b/><c/><d/></a>") == [4]
        assert run("/a[b][c]/d", "<a><b/><d/></a>") == []

    def test_nested_predicates(self):
        assert run("/a[b[c]]/d", "<a><b><c/></b><d/></a>") == [4]
        assert run("/a[b[c]]/d", "<a><b/><c/><d/></a>") == []

    def test_predicate_path(self):
        assert run("/a[b/c]/d", "<a><b><c/></b><d/></a>") == [4]

    def test_attribute_predicate(self):
        assert run("/a[@x]/b", "<a x='1'><b/></a>") == [2]
        assert run("/a[@x]/b", "<a><b/></a>") == []

    def test_attribute_value_predicate(self):
        assert run("/a[@x = '1']/b", "<a x='1'><b/></a>") == [2]
        assert run("/a[@x = '1']/b", "<a x='2'><b/></a>") == []

    def test_value_test_on_child(self):
        xml = "<a><p>10</p><b/></a>"
        assert run("/a[p = 10]/b", xml) == [3]
        assert run("/a[p = 11]/b", xml) == []

    def test_value_test_numeric_comparison(self):
        xml = "<r><i><p>25</p><t/></i><i><p>40</p><t/></i></r>"
        assert run("/r/i[p < 30]/t", xml) == [4]

    def test_self_value_test(self):
        xml = "<a><b>yes</b><b>no</b></a>"
        assert run("/a/b[. = 'yes']", xml) == [2]

    def test_string_value_spans_subtree(self):
        # BranchM string-value accumulates descendant text too.
        xml = "<a><b>he<i>ll</i>o</b></a>"
        assert run("/a/b[. = 'hello']", xml) == [2]

    def test_return_node_with_predicate(self):
        xml = "<a><b><e/></b><b/></a>"
        assert run("/a/b[e]", xml) == [2]


class TestRepetition:
    def test_slot_reuse_across_siblings(self):
        """One slot suffices: siblings never overlap in time."""
        xml = "<r><a><d/><c/></a><a><c/></a><a><d/><c/></a></r>"
        assert run("/r/a[d]/c", xml) == [4, 9]

    def test_candidates_do_not_leak_between_siblings(self):
        xml = "<r><a><c/></a><a><d/></a></r>"
        assert run("/r/a[d]/c", xml) == []


class TestGating:
    def test_descendant_axis_rejected(self):
        with pytest.raises(UnsupportedQueryError, match="XP"):
            BranchM("//a[b]")

    def test_wildcard_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            BranchM("/a/*[b]")

    def test_descendant_inside_predicate_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            BranchM("/a[.//b]/c")

    def test_reset(self):
        machine = BranchM("/a[b]/c")
        machine.feed(parse_string("<a><b/><c/></a>"))
        assert machine.results == [3]
        machine.reset()
        for node in machine.machine.iter_nodes():
            slot = machine.slot_of(node)
            assert slot.level == -1 and slot.flags == 0
