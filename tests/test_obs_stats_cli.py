"""The ``python -m repro stats`` front end and its runner."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.obs.stats import run_stats

XML = (
    "<site><regions>"
    "<item><name>a</name><quantity>1</quantity></item>"
    "<item><name>b</name><quantity>3</quantity></item>"
    "</regions></site>"
)


@pytest.fixture
def corpus(tmp_path):
    path = tmp_path / "doc.xml"
    path.write_text(XML, encoding="utf-8")
    return path


def test_run_stats_populates_every_family(corpus):
    run = run_stats("//item/name", corpus, chunk_size=16)
    snapshot = run.registry.snapshot()
    for family in (
        "repro_tokenizer_bytes_total",
        "repro_tokenizer_events_total",
        "repro_machine_events_total",
        "repro_multiq_events_total",
        "repro_multiq_dispatched_total",
        "repro_multiq_router_hit_ratio",
        "repro_multiq_emitted_total",
        "repro_stats_chunks_total",
    ):
        assert family in snapshot, family
    assert run.results == {"query": [4, 7]}
    assert run.chunks > 1


def test_run_stats_traces_every_stage(corpus):
    run = run_stats("//item/name", corpus, chunk_size=16)
    names = {event["name"] for event in run.tracer.events}
    assert {"chunk", "parse", "dispatch", "emit", "close"} <= names
    assert not run.tracer.open_spans
    assert len(run.tracer.durations("chunk")) == run.chunks


def test_run_stats_results_match_unobserved(corpus):
    from repro import evaluate

    run = run_stats("//item[quantity < 2]/name", corpus)
    assert run.results["query"] == evaluate("//item[quantity < 2]/name", corpus)


def test_cli_prometheus_output(corpus, capsys):
    assert cli_main(["stats", "//item/name", str(corpus)]) == 0
    out = capsys.readouterr().out
    assert "# TYPE repro_machine_events_total counter" in out
    assert 'repro_multiq_emitted_total{query="query"} 2' in out


def test_cli_json_output(corpus, capsys):
    assert cli_main(["stats", "//item/name", str(corpus),
                     "--format", "json"]) == 0
    loaded = json.loads(capsys.readouterr().out)
    assert loaded["repro_multiq_queries"]["values"][0]["value"] == 1


def test_cli_trace_output(corpus, capsys, tmp_path):
    trace_path = tmp_path / "trace.json"
    assert cli_main(["stats", "//item/name", str(corpus),
                     "--trace", str(trace_path)]) == 0
    payload = json.loads(trace_path.read_text())
    assert payload["traceEvents"]
    for event in payload["traceEvents"]:
        assert set(event) >= {"name", "cat", "ph", "ts", "pid", "tid"}


def test_cli_queries_file(corpus, capsys, tmp_path):
    queries = tmp_path / "queries.tsv"
    queries.write_text("names\t//item/name\ncheap\t//item[quantity < 2]/name\n",
                       encoding="utf-8")
    assert cli_main(["stats", "--queries", str(queries), str(corpus)]) == 0
    out = capsys.readouterr().out
    assert 'repro_multiq_emitted_total{query="names"} 2' in out
    assert 'repro_multiq_emitted_total{query="cheap"} 1' in out


def test_cli_bad_query_is_reported(corpus, capsys):
    assert cli_main(["stats", "//item[", str(corpus)]) == 2
    assert "twigm:" in capsys.readouterr().err
