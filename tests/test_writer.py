"""Tests for XML serialization (repro.stream.writer)."""

import pytest

from repro.stream.document import build_document
from repro.stream.tokenizer import parse_string
from repro.stream.writer import (
    document_to_string,
    element_to_string,
    escape_attribute,
    escape_text,
    events_to_string,
    write_file,
)


class TestEscaping:
    def test_text_escapes(self):
        assert escape_text("a & b < c > d") == "a &amp; b &lt; c &gt; d"

    def test_text_no_escapes_fast_path(self):
        assert escape_text("plain") == "plain"

    def test_attribute_escapes_quotes(self):
        assert escape_attribute('say "hi" & go') == "say &quot;hi&quot; &amp; go"


class TestSerialization:
    def test_empty_element_self_closes(self):
        assert events_to_string(parse_string("<a></a>")) == "<a/>"

    def test_attributes_serialized(self):
        xml = events_to_string(parse_string("<a x='1' y='2'/>"))
        assert xml == '<a x="1" y="2"/>'

    def test_text_preserved(self):
        xml = events_to_string(parse_string("<a>x &amp; y</a>"))
        assert xml == "<a>x &amp; y</a>"

    def test_nested_structure(self):
        xml = events_to_string(parse_string("<a><b>t</b><c/></a>"))
        assert xml == "<a><b>t</b><c/></a>"

    @pytest.mark.parametrize(
        "source",
        [
            "<a/>",
            "<a><b/><c><d/></c></a>",
            '<a k="v&amp;w">one<b>two</b>three</a>',
            "<r><x>a&lt;b</x></r>",
        ],
    )
    def test_round_trip(self, source):
        once = events_to_string(parse_string(source, skip_whitespace=False))
        twice = events_to_string(parse_string(once, skip_whitespace=False))
        assert once == twice
        # And the event streams agree.
        assert list(parse_string(once, skip_whitespace=False)) == list(
            parse_string(source, skip_whitespace=False)
        )

    def test_indent_mode(self):
        xml = events_to_string(parse_string("<a><b><c/></b></a>"), indent="  ")
        assert "\n  <b>" in xml
        assert "\n    <c/>" in xml

    def test_write_file(self, tmp_path):
        path = tmp_path / "out.xml"
        write_file(parse_string("<a><b/></a>"), path)
        assert path.read_text() == "<a><b/></a>"


class TestTreeSerialization:
    def test_document_to_string(self):
        document = build_document(parse_string("<a><b>t</b></a>"))
        assert document_to_string(document) == "<a><b>t</b></a>"

    def test_element_to_string_is_a_fragment(self):
        document = build_document(parse_string("<a><b x='1'>t<c/></b></a>"))
        fragment = element_to_string(document.root.children[0])
        assert fragment == '<b x="1">t<c/></b>'
