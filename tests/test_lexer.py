"""Tests for the XPath lexer (repro.xpath.lexer)."""

import pytest

from repro.errors import XPathSyntaxError
from repro.xpath.lexer import tokenize


def kinds(query):
    return [token.kind for token in tokenize(query)]


def texts(query):
    return [token.text for token in tokenize(query)][:-1]  # drop END


class TestTokenKinds:
    def test_slashes(self):
        assert kinds("/a//b") == ["SLASH", "NAME", "DSLASH", "NAME", "END"]

    def test_star_and_brackets(self):
        assert kinds("//*[b]") == ["DSLASH", "STAR", "LBRACKET", "NAME", "RBRACKET", "END"]

    def test_attribute(self):
        assert kinds("//a[@id]") == [
            "DSLASH", "NAME", "LBRACKET", "AT", "NAME", "RBRACKET", "END",
        ]

    def test_text_function(self):
        assert "TEXT" in kinds("//a[text() = 'x']")

    def test_name_called_text_without_parens(self):
        tokens = tokenize("//text")
        assert tokens[1].kind == "NAME"
        assert tokens[1].text == "text"

    @pytest.mark.parametrize(
        "op, kind",
        [("=", "EQ"), ("!=", "NE"), ("<", "LT"), ("<=", "LE"), (">", "GT"), (">=", "GE")],
    )
    def test_comparison_operators(self, op, kind):
        assert kind in kinds(f"//a[b {op} 1]")

    def test_string_literals_both_quotes(self):
        tokens = tokenize("//a[b = \"x\"][c = 'y']")
        strings = [t.text for t in tokens if t.kind == "STRING"]
        assert strings == ["x", "y"]

    def test_number_literal(self):
        tokens = tokenize("//a[b = 3.25]")
        numbers = [t.text for t in tokens if t.kind == "NUMBER"]
        assert numbers == ["3.25"]

    def test_integer_literal(self):
        tokens = tokenize("//a[b = 42]")
        assert [t.text for t in tokens if t.kind == "NUMBER"] == ["42"]

    def test_dot_token(self):
        assert kinds("//a[. = '1']")[3] == "DOT"

    def test_name_with_hyphen_and_dots(self):
        tokens = tokenize("//seq-rev_date")
        assert tokens[1].text == "seq-rev_date"

    def test_whitespace_ignored(self):
        assert kinds("// a [ b ]") == kinds("//a[b]")

    def test_positions_recorded(self):
        tokens = tokenize("//abc")
        assert tokens[0].position == 0
        assert tokens[1].position == 2

    def test_end_sentinel(self):
        assert tokenize("//a")[-1].kind == "END"


class TestLexErrors:
    def test_unterminated_string(self):
        with pytest.raises(XPathSyntaxError, match="unterminated"):
            tokenize("//a[b = 'x]")

    def test_bare_bang(self):
        with pytest.raises(XPathSyntaxError, match="!="):
            tokenize("//a[b ! 1]")

    def test_unexpected_character(self):
        with pytest.raises(XPathSyntaxError, match="unexpected character"):
            tokenize("//a[b # c]")

    def test_error_carries_position(self):
        with pytest.raises(XPathSyntaxError) as info:
            tokenize("//a$")
        assert info.value.position == 3
