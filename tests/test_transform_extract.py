"""Tests for substream extraction (repro.transform.extract)."""

import json

import pytest

from repro.errors import CheckpointError
from repro.stream.tokenizer import parse_string
from repro.transform.base import coerce_queries
from repro.transform.extract import Fragment, SubstreamExtractor, select

DOC = (
    '<catalog><book id="1"><title>First</title><price>29</price></book>'
    '<book id="2"><title>Second</title><price>45</price></book>'
    "<note>keep</note></catalog>"
)


class TestSelect:
    def test_immediate_query_fragments(self):
        fragments = select(DOC, "//title")
        assert [f.text for f in fragments] == [
            "<title>First</title>",
            "<title>Second</title>",
        ]

    def test_fragments_are_well_formed(self):
        for fragment in select(DOC, "//book"):
            events = list(parse_string(fragment.text, skip_whitespace=False))
            assert events[0].level == 1

    def test_attributes_preserved(self):
        fragments = select(DOC, "//book")
        assert fragments[0].text.startswith('<book id="1">')

    def test_predicate_query_buffers_until_verdict(self):
        fragments = select(DOC, "//book[price]/title")
        assert [f.text for f in fragments] == [
            "<title>First</title>",
            "<title>Second</title>",
        ]

    def test_value_test_filters(self):
        fragments = select(DOC, '//book[title = "Second"]')
        assert len(fragments) == 1
        assert "Second" in fragments[0].text

    def test_no_matches(self):
        assert select(DOC, "//missing") == []

    def test_multiple_queries_named(self):
        fragments = select(DOC, {"t": "//title", "n": "//note"})
        by_query = {}
        for fragment in fragments:
            by_query.setdefault(fragment.query, []).append(fragment.text)
        assert by_query["t"] == ["<title>First</title>",
                                 "<title>Second</title>"]
        assert by_query["n"] == ["<note>keep</note>"]

    def test_nested_matches_both_emitted(self):
        fragments = select("<r><a><a>x</a></a></r>", "//a")
        texts = {f.text for f in fragments}
        assert texts == {"<a><a>x</a></a>", "<a>x</a>"}

    def test_fragment_node_ids_are_document_ids(self):
        fragments = select(DOC, "//note")
        # note is the 8th element in document order.
        assert fragments[0].node_id == 8


class TestPullPushIdentity:
    @pytest.mark.parametrize("query", ["//title", "//book[price]",
                                       '//book[title = "Second"]/price'])
    def test_byte_identical(self, query):
        pull = SubstreamExtractor(query).evaluate(DOC)
        push = SubstreamExtractor(query).evaluate_push(DOC)
        assert pull == push

    def test_push_chunked_identical(self):
        reference = SubstreamExtractor("//book").evaluate(DOC)
        extractor = SubstreamExtractor("//book")
        for index in range(0, len(DOC), 7):
            extractor.feed_text(DOC[index:index + 7])
        assert extractor.close() == reference


class TestStreamingChunks:
    def test_on_chunk_streams_before_subtree_closes(self):
        seen = []
        extractor = SubstreamExtractor(
            "//book", on_chunk=lambda n, i, c: seen.append(c), chunk_size=4
        )
        prefix = DOC[:DOC.index("</book>")]
        extractor.feed_text(prefix)
        # The first book has not closed, yet chunks already left.
        assert seen
        extractor.feed_text(DOC[len(prefix):])
        extractor.close()
        text = "".join(seen)
        assert text.startswith('<book id="1">')

    def test_on_fragment_events_rebased(self):
        captured = []
        extractor = SubstreamExtractor(
            "//book",
            on_fragment_events=lambda n, i, ev: captured.append(ev),
        )
        extractor.evaluate_push(DOC)
        events = captured[0]
        assert events[0].level == 1
        assert events[0].node_id == 1
        assert [e.level for e in events if hasattr(e, "node_id")] == [1, 2, 2]


class TestSnapshotRestore:
    def test_mid_fragment_snapshot_resumes_exactly(self):
        reference = SubstreamExtractor("//book", chunk_size=4)
        expected = reference.evaluate_push(DOC)

        extractor = SubstreamExtractor("//book", chunk_size=4)
        cut = DOC.index("<price>29")  # inside the first book's subtree
        extractor.feed_text(DOC[:cut])
        blob = json.loads(json.dumps(extractor.snapshot()))

        restored = SubstreamExtractor.restore(blob, chunk_size=4)
        restored.feed_text(DOC[cut:])
        assert restored.close() == expected

    def test_snapshot_preserves_counters(self):
        extractor = SubstreamExtractor("//title")
        extractor.evaluate_push(DOC)
        blob = extractor.snapshot()
        restored = SubstreamExtractor.restore(blob)
        assert restored.fragment_counts == extractor.fragment_counts
        assert restored.fragment_bytes == extractor.fragment_bytes
        assert restored.fragments == extractor.fragments

    def test_restore_rejects_wrong_kind(self):
        extractor = SubstreamExtractor("//title")
        blob = extractor.snapshot()
        blob["kind"] = "other"
        with pytest.raises(CheckpointError):
            SubstreamExtractor.restore(blob)

    def test_restore_rejects_malformed(self):
        with pytest.raises(CheckpointError):
            SubstreamExtractor.restore({"version": 1, "kind": "extract"})


class TestStoreReplay:
    def test_fragments_from_log_replay(self, tmp_path):
        from repro.store.replay import ingest
        from repro.store.replay import replay_into

        path = str(tmp_path / "log")
        ingest(DOC, path)
        extractor = SubstreamExtractor("//book/title")
        replay_into(extractor, path)
        assert [f.text for f in extractor.fragments] == [
            "<title>First</title>",
            "<title>Second</title>",
        ]

    def test_replay_matches_direct_evaluation(self, tmp_path):
        from repro.store.replay import ingest
        from repro.store.replay import replay_into

        path = str(tmp_path / "log")
        ingest(DOC, path)
        direct = SubstreamExtractor("//book").evaluate_push(DOC)
        extractor = SubstreamExtractor("//book")
        replay_into(extractor, path, close=False)
        assert extractor.close() == direct


class TestCoerceQueries:
    def test_single_string(self):
        assert coerce_queries("//a") == {"select": "//a"}

    def test_sequence_named_by_source(self):
        assert coerce_queries(["//a", "//b"]) == {"//a": "//a", "//b": "//b"}

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            coerce_queries(["//a", "//a"])

    def test_fragment_dataclass(self):
        fragment = Fragment("q", 3, "<x/>")
        assert fragment.query == "q" and fragment.node_id == 3
