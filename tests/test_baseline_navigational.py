"""Tests for the XMLTaskForce stand-in / oracle (repro.baselines.navigational)."""

from repro.baselines.navigational import NavigationalDomEngine, evaluate_on_document
from repro.stream.document import build_document
from repro.stream.tokenizer import parse_string


def run(query, xml):
    return NavigationalDomEngine().run(query, parse_string(xml))


def doc(xml):
    return build_document(parse_string(xml))


class TestTrunkSemantics:
    def test_rooted_path(self):
        assert run("/a/b", "<a><b/><c><b/></c></a>") == [2]

    def test_rooted_path_rejects_non_root(self):
        assert run("/b", "<a><b/></a>") == []

    def test_descendant(self):
        assert run("//b", "<a><b><b/></b></a>") == [2, 3]

    def test_wildcards(self):
        assert run("//a/*/c", "<a><x><c/></x><c/></a>") == [3]

    def test_results_sorted_in_document_order(self):
        assert run("//b", "<a><b/><x/><b/></a>") == [2, 4]


class TestPredicates:
    def test_child_predicate(self):
        assert run("//a[d]/b", "<r><a><d/><b/></a><a><b/></a></r>") == [4]

    def test_descendant_predicate(self):
        assert run("//a[.//d]/b", "<r><a><x><d/></x><b/></a></r>") == [5]

    def test_nested_predicate(self):
        assert run("//a[b[c]]", "<r><a><b><c/></b></a><a><b/></a></r>") == [2]

    def test_attribute_predicates(self):
        xml = "<r><a id='1'><b/></a><a><b/></a></r>"
        assert run("//a[@id]/b", xml) == [3]

    def test_value_test_on_string_value(self):
        xml = "<r><a><p>2<i>5</i></p><t/></a></r>"
        assert run("//a[p = 25]/t", xml) == [5]

    def test_branching_at_multiple_levels(self):
        xml = "<r><a><d/><b><e/><c/></b></a></r>"
        assert run("//a[d]/b[e]/c", xml) == [6]


class TestOracleProperties:
    def test_supports_everything(self):
        engine = NavigationalDomEngine()
        assert engine.supports("//a[b][.//c]/*")
        assert not engine.streaming

    def test_evaluate_on_document_direct(self):
        document = doc("<a><b/></a>")
        assert evaluate_on_document(document, "//b") == [2]

    def test_memoization_consistency_on_recursive_data(self):
        """Repeated tags along a path do not confuse the node-set pass."""
        xml = "<a><a><a><b/></a></a></a>"
        assert run("//a//a/b", xml) == [4]
        assert run("/a/a/a/b", xml) == [4]
        assert run("/a/a/b", xml) == []
