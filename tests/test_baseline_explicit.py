"""Tests for the XSQ stand-in (repro.baselines.explicit)."""

import pytest

from repro.baselines.explicit import ExplicitMatchEngine
from repro.stream.tokenizer import parse_string
from tests.conftest import chain_c1_id, chain_xml


def run(query, xml):
    return ExplicitMatchEngine().run(query, parse_string(xml))


class TestCorrectness:
    def test_simple_paths(self):
        assert run("/a/b", "<a><b/><c/></a>") == [2]
        # Confirmation order is innermost-first (a match is final when its
        # shallowest binding closes); the solution *set* is what matters.
        assert sorted(run("//b", "<a><b><b/></b></a>")) == [2, 3]

    def test_child_predicate(self):
        assert run("//a[d]/b", "<r><a><d/><b/></a><a><b/></a></r>") == [4]

    def test_predicate_arrives_after_trunk_child(self):
        assert run("//a[d]/b", "<r><a><b/><d/></a></r>") == [3]

    def test_attribute_predicate(self):
        xml = "<r><a id='1'><b/></a><a><b/></a></r>"
        assert run("//a[@id]/b", xml) == [3]

    def test_attribute_value_predicate(self):
        xml = "<r><a id='1'><b/></a><a id='2'><b/></a></r>"
        assert run("//a[@id = '2']/b", xml) == [5]

    def test_value_test_predicate(self):
        xml = "<r><i><p>25</p><t/></i><i><p>40</p><t/></i></r>"
        assert run("//i[p < 30]/t", xml) == [4]

    def test_figure_1_query(self, figure1_xml, figure1_c1):
        assert run("//a[d]//b[e]//c", figure1_xml) == [figure1_c1]

    def test_predicate_on_return_step(self):
        xml = "<r><b><e/></b><b/></r>"
        assert run("//b[e]", xml) == [2]

    def test_recursive_duplicates_collapse(self):
        assert run("//a//c", "<a><a><c/></a></a>") == [3]

    def test_deep_descendant_chains(self):
        xml = chain_xml(6, with_predicates=False)
        assert run("//a//b//c", xml) == [chain_c1_id(6, with_predicates=False)]


class TestExplicitEnumerationCost:
    def test_peak_matches_quadratic_on_chain(self):
        """The record population reaches the n² the paper ascribes to
        explicit-match engines on recursive data (figure 1)."""
        n = 12
        engine = ExplicitMatchEngine()
        engine.run("//a//b//c", parse_string(chain_xml(n, with_predicates=False)))
        assert engine.peak_matches >= n * n

    def test_peak_matches_small_on_flat_data(self):
        xml = "<r>" + "<a><b/></a>" * 20 + "</r>"
        engine = ExplicitMatchEngine()
        engine.run("//a/b", xml_events(xml))
        assert engine.peak_matches <= 4


def xml_events(xml):
    return parse_string(xml)


class TestPropertyDifferential:
    def test_random_documents_against_oracle(self):
        """Hypothesis: on its fragment, the explicit engine ≡ the oracle."""
        from hypothesis import given, settings, strategies as st

        from repro.baselines.navigational import NavigationalDomEngine
        from tests.test_equivalence_properties import xml_trees

        oracle = NavigationalDomEngine()

        @st.composite
        def xsq_queries(draw):
            n_steps = draw(st.integers(1, 3))
            parts = []
            for _ in range(n_steps):
                axis = draw(st.sampled_from(["/", "//"]))
                name = draw(st.sampled_from(["a", "b", "c", "d"]))
                step = f"{axis}{name}"
                pred = draw(st.sampled_from(
                    ["", "", "[a]", "[b]", "[@k]", "[@k = '1']", "[c = '1']"]
                ))
                parts.append(step + pred)
            return "".join(parts)

        @settings(max_examples=200, deadline=None)
        @given(xml=xml_trees(), query=xsq_queries())
        def check(xml, query):
            engine = ExplicitMatchEngine()
            if not engine.supports(query):
                return
            events = list(parse_string(xml))
            expected = sorted(oracle.run(query, iter(events)))
            actual = sorted(engine.run(query, iter(events)))
            assert actual == expected, (query, xml)

        check()


class TestFragmentGating:
    @pytest.mark.parametrize(
        "query, ok",
        [
            ("//a//b", True),
            ("//a[d]/b", True),
            ("//a[@id]/b", True),
            ("//a[p = 10]/b", True),
            ("//a/*/b", False),          # wildcard
            ("//a[b/c]/d", False),        # nested predicate path
            ("//a[.//d]/b", False),       # descendant inside predicate
            ("//a[d][e]/b", False),       # two predicates on a step
            ("//a[. = 'x']/b", False),    # value test on the trunk element
        ],
    )
    def test_supports(self, query, ok):
        assert ExplicitMatchEngine().supports(query) is ok
