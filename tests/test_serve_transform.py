"""Transform sessions in the serving layer (``select:`` queries).

A session whose queries carry the ``select:`` prefix delivers each
match's serialized XML fragment with the result, rides the same
checkpoint/resume machinery as match sessions (fragments live in the
unacknowledged-result log), and keeps the byte-identical-resume
guarantee including mid-fragment kills.
"""

from __future__ import annotations

import json

import pytest

from repro.serve.session import ServeConfig, Session, SessionRejected

XML = (
    "<site><items>"
    + "".join(
        f'<item id="{i}"><name>thing{i}</name><qty>{i}</qty></item>'
        for i in range(12)
    )
    + "</items></site>"
)

CONFIG = ServeConfig(checkpoint_interval=2)


def open_transform(queries: dict, config: ServeConfig = CONFIG):
    results: list[tuple[int, str, int, "str | None"]] = []

    def on_result(name, node_id, seq, fragment=None):
        results.append((seq, name, node_id, fragment))

    session = Session.open({"queries": queries}, config, on_result)
    return session, results


class TestAdmission:
    def test_transform_query_admitted(self):
        session, _ = open_transform({"names": "select://item/name"})
        assert session.queries == {"names": "select://item/name"}

    def test_mixed_queries_rejected(self):
        with pytest.raises(SessionRejected) as info:
            Session.open(
                {"queries": {"a": "select://x", "b": "//y"}},
                CONFIG, lambda *a: None,
            )
        assert info.value.payload["code"] == "mixed_queries"

    def test_bad_transform_query_rejected(self):
        with pytest.raises(SessionRejected) as info:
            Session.open(
                {"queries": {"bad": "select://a[["}},
                CONFIG, lambda *a: None,
            )
        assert info.value.payload["code"] == "bad_query"


class TestResults:
    def test_fragments_delivered_with_results(self):
        session, results = open_transform({"names": "select://item/name"})
        session.feed(0, XML)
        done = session.finish()
        assert done["counts"] == {"names": 12}
        assert [r[3] for r in results[:2]] == [
            "<name>thing0</name>", "<name>thing1</name>",
        ]
        # Sequence numbers are the global result order.
        assert [r[0] for r in results] == list(range(1, 13))

    def test_result_log_carries_fragments(self):
        session, _ = open_transform({"names": "select://item/name"})
        session.feed(0, XML)
        assert session.result_log[0][3] == "<name>thing0</name>"

    def test_predicate_transform_query(self):
        session, results = open_transform(
            {"q": 'select://item[qty = "3"]'}
        )
        session.feed(0, XML)
        session.finish()
        assert len(results) == 1
        assert 'id="3"' in results[1 - 1][3]


class TestCheckpointResume:
    def test_blob_kind_and_roundtrip(self):
        session, _ = open_transform({"names": "select://item/name"})
        session.feed(0, XML[:100])
        blob = json.loads(json.dumps(session.checkpoint()))
        assert blob["kind"] == "transform"
        assert blob["queries"] == {"names": "select://item/name"}

    def test_mid_fragment_resume_is_byte_identical(self):
        reference, ref_results = open_transform(
            {"items": "select://item"})
        reference.feed(0, XML)
        reference.finish()

        session, live = open_transform({"items": "select://item"})
        cut = XML.index("<qty>5")  # inside item 5's subtree
        session.feed(0, XML[:cut])
        blob = json.loads(json.dumps(session.checkpoint()))

        resumed_results = []

        def on_result(name, node_id, seq, fragment=None):
            resumed_results.append((seq, name, node_id, fragment))

        resumed = Session.resume(blob, CONFIG, on_result,
                                 last_result_seq=live[-1][0] if live else 0)
        assert not resumed.pending_replay  # client held everything
        resumed.feed(cut, XML[cut:])
        resumed.finish()
        assert live + resumed_results == ref_results

    def test_pending_replay_resends_fragment_tail(self):
        session, live = open_transform({"names": "select://item/name"})
        session.feed(0, XML[:len(XML) // 2])
        blob = json.loads(json.dumps(session.checkpoint()))
        assert live  # some results emitted pre-checkpoint

        # The client confirmed nothing: the whole log tail must re-send,
        # fragments included.
        resumed = Session.resume(blob, CONFIG, lambda *a: None,
                                 last_result_seq=0)
        assert resumed.pending_replay == [list(r) for r in live]
        assert all(len(entry) == 4 for entry in resumed.pending_replay)

    def test_suppression_skips_held_results(self):
        session, live = open_transform({"names": "select://item/name"})
        session.feed(0, XML[:len(XML) // 2])
        blob = json.loads(json.dumps(session.checkpoint()))
        held = live[-1][0]

        replayed = []

        def on_result(name, node_id, seq, fragment=None):
            replayed.append(seq)

        resumed = Session.resume(blob, CONFIG, on_result,
                                 last_result_seq=held)
        resumed.feed(blob["input_offset"], XML[blob["input_offset"]:])
        resumed.finish()
        assert all(seq > held for seq in replayed)


class TestMatchSessionsUnchanged:
    def test_plain_session_on_result_arity(self):
        """Non-transform sessions still call on_result with three args."""
        calls = []
        session = Session.open(
            {"queries": {"q": "//item"}}, CONFIG,
            lambda name, node_id, seq: calls.append((name, node_id, seq)),
        )
        session.feed(0, XML)
        session.finish()
        assert len(calls) == 12
