"""Dispatcher checkpointing: snapshot at every boundary ≡ uninterrupted.

Extends the per-stream guarantees of tests/test_checkpoint.py to the
whole multi-query dispatcher: every machine, every multiplexed sink, the
mid-parse tokenizer, the dedup grouping, and the dispatch counters must
survive a JSON round trip at any event boundary.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import CheckpointError
from repro.multiq import MULTIQ_SNAPSHOT_VERSION, MultiQueryEngine
from repro.stream.tokenizer import parse_string

from tests.conftest import chain_xml

#: Query sets covering all three engines, shared (duplicate) units,
#: value tests, and attributes — each paired with a document.
CASES = [
    (
        {"ab": "//a//b", "dup": "//a//b", "rooted": "/a/b/c"},
        chain_xml(3, with_predicates=False),
    ),
    (
        {"q1": "//a[d]//b[e]//c", "branch": "/a[d]/a", "path": "//e"},
        chain_xml(3),
    ),
    (
        {"cheap": "//book[price < 30]//title", "titles": "//title"},
        "<lib><book><price>25</price><title/></book>"
        "<book><price>40</price><title/></book></lib>",
    ),
    (
        {"attr": "//a[@k = 'v']/b", "star": "//a//*"},
        "<r><a k='v'><b/></a><a k='x'><b/></a></r>",
    ),
]


def uninterrupted(queries: dict[str, str], document: str) -> dict[str, list[int]]:
    engine = MultiQueryEngine(queries)
    engine.feed_text(document)
    return engine.close()


def roundtrip(engine: MultiQueryEngine, **kwargs) -> MultiQueryEngine:
    return MultiQueryEngine.restore(
        json.loads(json.dumps(engine.snapshot())), **kwargs
    )


@pytest.mark.parametrize("queries,document", CASES)
def test_snapshot_at_every_char_boundary(queries, document):
    """Suspend/resume at every feed boundary must be invisible."""
    expected = uninterrupted(queries, document)
    engine = MultiQueryEngine(queries)
    for ch in document:
        engine.feed_text(ch)
        engine = roundtrip(engine)
    assert engine.close() == expected


@pytest.mark.parametrize("queries,document", CASES)
def test_single_midpoint_snapshot(queries, document):
    expected = uninterrupted(queries, document)
    mid = len(document) // 2
    engine = MultiQueryEngine(queries)
    engine.feed_text(document[:mid])
    resumed = roundtrip(engine)
    resumed.feed_text(document[mid:])
    assert resumed.close() == expected


def test_snapshot_is_json_serializable_end_to_end():
    engine = MultiQueryEngine({"q": "//a[d]//b", "dup": "//a[d]//b"})
    engine.feed_text(chain_xml(2)[:10])
    snap = engine.snapshot()
    assert snap["version"] == MULTIQ_SNAPSHOT_VERSION
    assert json.loads(json.dumps(snap)) == snap


def test_dedup_grouping_survives_restore():
    engine = MultiQueryEngine({"one": "//a/b", "two": "//a[./b]", "three": "//a/b"})
    assert engine.unit_count() == 2
    resumed = roundtrip(engine)
    assert resumed.unit_count() == 2
    assert resumed.names == ["one", "two", "three"]
    assert resumed.canonical_queries() == engine.canonical_queries()


def test_dispatch_stats_survive_restore():
    engine = MultiQueryEngine({"ab": "//a//b"})
    engine.feed_events(parse_string("<a><b/></a>"))
    before = engine.dispatch_stats()
    after = roundtrip(engine).dispatch_stats()
    assert after == before


def test_mid_stream_added_query_survives_restore():
    events = list(parse_string("<r><a><b/></a><a><b/></a></r>"))
    engine = MultiQueryEngine({"early": "//a/b"})
    engine.feed_events(events[:4])
    engine.add_query("late", "//a/b")  # dedicated warm-stream unit
    assert engine.unit_count() == 2
    resumed = roundtrip(engine)
    assert resumed.unit_count() == 2
    resumed.feed_events(events[4:])

    oracle = MultiQueryEngine({"early": "//a/b"})
    oracle.feed_events(events[:4])
    oracle.add_query("late", "//a/b")
    oracle.feed_events(events[4:])
    assert resumed.results() == oracle.results()


def test_version_mismatch_rejected():
    snap = MultiQueryEngine({"q": "//a"}).snapshot()
    snap["version"] = MULTIQ_SNAPSHOT_VERSION + 1
    with pytest.raises(CheckpointError, match="version"):
        MultiQueryEngine.restore(snap)


def test_malformed_snapshot_rejected():
    with pytest.raises(CheckpointError):
        MultiQueryEngine.restore({"version": MULTIQ_SNAPSHOT_VERSION})


def test_mismatched_grouping_rejected():
    """A unit claiming a query with a different structure is refused."""
    engine = MultiQueryEngine({"one": "//a/b", "two": "//a/c"})
    snap = engine.snapshot()
    snap["units"][0]["queries"] = ["one", "two"]
    snap["units"] = snap["units"][:1]
    with pytest.raises(CheckpointError):
        MultiQueryEngine.restore(snap)


def test_callback_does_not_refire_after_restore():
    fired: list[tuple[str, int]] = []
    engine = MultiQueryEngine({"q": "//a"}, on_match=lambda n, i: fired.append((n, i)))
    engine.feed_text("<r><a/><a/>")
    assert len(fired) == 2

    resumed_fired: list[tuple[str, int]] = []
    resumed = roundtrip(engine, on_match=lambda n, i: resumed_fired.append((n, i)))
    resumed.feed_text("<a/></r>")
    resumed.close()
    assert len(resumed_fired) == 1  # only the third <a>
    assert set(resumed_fired).isdisjoint(fired)


def test_callback_restore_without_callback_stays_silent_but_deduped():
    engine = MultiQueryEngine({"q": "//a"}, on_match=lambda n, i: None)
    engine.feed_text("<r><a/>")
    resumed = roundtrip(engine)  # no on_match supplied
    resumed.feed_text("<a/></r>")
    assert resumed.close() == {}  # still callback mode, nothing collected


def test_restore_preserves_policy_and_limits():
    from repro.stream.recovery import RecoveryPolicy, ResourceLimits

    engine = MultiQueryEngine(
        {"q": "//a"}, policy="repair", limits=ResourceLimits(max_depth=9)
    )
    engine.feed_text("<r><a>")
    resumed = roundtrip(engine)
    assert resumed._policy is RecoveryPolicy.REPAIR
    assert resumed._limits.max_depth == 9
    # repair still applies after restore: truncated doc closes cleanly
    assert resumed.close() == {"q": [2]}


def test_per_query_limits_survive_restore():
    from repro.errors import ResourceLimitError
    from repro.stream.recovery import ResourceLimits

    engine = MultiQueryEngine()
    engine.add_query("capped", "//a", limits=ResourceLimits(max_total_events=3))
    resumed = roundtrip(engine)
    with pytest.raises(ResourceLimitError):
        resumed.feed_events(parse_string(chain_xml(4, with_predicates=False)))
