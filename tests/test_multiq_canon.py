"""Canonicalization + dedup (repro.multiq.canon, querytree equality).

Structural ``__eq__``/``__hash__`` on compiled query trees is the dedup
engine's foundation: two spellings of the same query must compare equal
(and share a machine), different queries must not.  The unparse→parse
round trip is the equality oracle — a compiled tree must equal the tree
compiled from its own canonical spelling.
"""

from __future__ import annotations

import pytest

from repro.core.processor import XPathStream
from repro.multiq import MultiQueryEngine, canonical_text, canonicalize, dedup_key
from repro.stream.recovery import ResourceLimits
from repro.xpath.querytree import compile_query
from repro.xpath.unparse import unparse_query

#: Queries spanning all fragments: paths, closures, wildcards,
#: predicates (nested, boolean), attribute and value tests.
QUERIES = [
    "/a",
    "//a",
    "//a/b",
    "//a//b",
    "/a/*/b",
    "//a//*",
    "//a[b]",
    "//a[b][c]//d",
    "//a[b//c]/d",
    "//a[@k]",
    "//a[@k = 'v']/b",
    "//book[price < 30]//title",
    "//a[b and not(c)]",
    "//a[b or @k = 'v']//c",
]


class TestStructuralEquality:
    def test_same_spelling_equal(self):
        for query in QUERIES:
            assert compile_query(query) == compile_query(query), query
            assert hash(compile_query(query)) == hash(compile_query(query))

    def test_respelled_duplicates_equal(self):
        assert compile_query("//a[b]//c") == compile_query("//a[./b]//c")
        assert compile_query("//a[b]") == compile_query("//a[./b]")

    def test_different_queries_not_equal(self):
        assert compile_query("//a[b]//c") != compile_query("//a[c]//b")
        assert compile_query("//a/b") != compile_query("//a//b")
        assert compile_query("/a") != compile_query("//a")
        assert compile_query("//a[@k]") != compile_query("//a[@j]")
        assert compile_query("//a[b < 3]") != compile_query("//a[b < 4]")

    def test_source_spelling_excluded_from_equality(self):
        left, right = compile_query("//a[./b]"), compile_query("//a[b]")
        assert left.source != right.source
        assert left == right and hash(left) == hash(right)

    def test_not_equal_to_other_types(self):
        tree = compile_query("//a")
        assert tree != "//a"
        assert tree is not None and tree != 17

    @pytest.mark.parametrize("query", QUERIES)
    def test_unparse_parse_round_trip_is_identity(self, query):
        """The canonical spelling compiles back to an equal tree."""
        tree = compile_query(query)
        assert compile_query(unparse_query(tree)) == tree


class TestCanon:
    def test_canonicalize_accepts_string_or_tree(self):
        tree = compile_query("//a/b")
        assert canonicalize("//a/b") == tree
        assert canonicalize(tree) is tree

    def test_canonical_text_normalizes_spelling(self):
        assert canonical_text("//a[./b]") == canonical_text("//a[b]")

    def test_dedup_key_separates_limits(self):
        tree = compile_query("//a")
        assert dedup_key(tree, None) == dedup_key(compile_query("//a"), None)
        assert dedup_key(tree, None) != dedup_key(tree, ResourceLimits(max_depth=5))
        assert dedup_key(tree, ResourceLimits(max_depth=5)) == dedup_key(
            tree, ResourceLimits(max_depth=5)
        )


class TestDedupSharing:
    XML = "<r><a><b/><c/></a><a><b/></a></r>"

    def test_identical_queries_share_one_machine(self):
        engine = MultiQueryEngine(
            {"one": "//a[b]//c", "two": "//a[./b]//c", "three": "//a[b]//c"}
        )
        assert len(engine) == 3
        assert engine.unit_count() == 1

    def test_shared_machine_fans_results_to_every_name(self):
        engine = MultiQueryEngine({"one": "//a/b", "two": "//a/b"})
        results = engine.evaluate(self.XML)
        expected = XPathStream("//a/b").evaluate(self.XML)
        assert results["one"] == expected
        assert results["two"] == expected

    def test_different_limits_split_units(self):
        engine = MultiQueryEngine()
        engine.add_query("plain", "//a")
        engine.add_query("capped", "//a", limits=ResourceLimits(max_depth=100))
        assert engine.unit_count() == 2

    def test_equal_limits_share_units(self):
        engine = MultiQueryEngine()
        engine.add_query("one", "//a", limits=ResourceLimits(max_depth=100))
        engine.add_query("two", "//a", limits=ResourceLimits(max_depth=100))
        assert engine.unit_count() == 1
