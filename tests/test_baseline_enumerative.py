"""Tests for the Galax stand-in (repro.baselines.enumerative)."""

from repro.baselines.enumerative import (
    EnumerativeDomEngine,
    count_pattern_matches,
    evaluate_enumerative,
)
from repro.stream.document import build_document
from repro.stream.tokenizer import parse_string
from tests.conftest import chain_c1_id, chain_xml


def run(query, xml):
    return EnumerativeDomEngine().run(query, parse_string(xml))


def doc(xml):
    return build_document(parse_string(xml))


class TestCorrectness:
    def test_simple_paths(self):
        assert run("/a/b", "<a><b/><c/></a>") == [2]
        assert run("//b", "<a><b><b/></b></a>") == [2, 3]

    def test_predicates(self):
        assert run("//a[d]/b", "<r><a><d/><b/></a><a><b/></a></r>") == [4]

    def test_value_and_attribute_tests(self):
        xml = "<r><a id='1'><p>10</p><b/></a></r>"
        assert run("//a[@id][p = 10]/b", xml) == [4]

    def test_figure_1_query(self, figure1_xml, figure1_c1):
        assert run("//a[d]//b[e]//c", figure1_xml) == [figure1_c1]

    def test_duplicate_solutions_collapse(self):
        assert run("//a//c", "<a><a><c/></a></a>") == [3]


class TestEnumerationCost:
    def test_counts_quadratic_matches_on_chain(self):
        """The n² pattern matches of figure 1 are each enumerated."""
        n = 12
        document = doc(chain_xml(n, with_predicates=False))
        count = count_pattern_matches(document, "//a//b//c")
        # n a-bindings, n² (a,b) prefixes, n² full matches.
        assert count == n + n * n + n * n

    def test_counts_linear_on_flat_data(self):
        xml = "<r>" + "<a><b/></a>" * 10 + "</r>"
        document = doc(xml)
        count = count_pattern_matches(document, "//a/b")
        assert count == 20  # 10 a-bindings + 10 (a,b) matches

    def test_enumeration_matches_solutions(self):
        document = doc(chain_xml(5, with_predicates=False))
        solutions = evaluate_enumerative(document, "//a//b//c")
        assert solutions == [chain_c1_id(5, with_predicates=False)]


class TestEngineContract:
    def test_supports_everything(self):
        engine = EnumerativeDomEngine()
        assert engine.supports("//a[b][c]//*[.//d]")
        assert not engine.streaming
        assert engine.name == "Galax*"
