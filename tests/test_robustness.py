"""Robustness and failure-injection tests.

Streaming engines must be iterative (no recursion in the document
dimension): a depth-5000 document is business as usual for TwigM even
though naive recursive evaluators would blow the interpreter stack.
Also covers hostile inputs: huge attributes, long text runs, many
siblings, and pathological queries.
"""

import sys

import pytest

from repro.core.processor import XPathStream, evaluate
from repro.core.twigm import TwigM
from repro.errors import ReproError, XPathSyntaxError, XmlSyntaxError
from repro.stream.tokenizer import parse_string
from repro.xpath.querytree import compile_query


def deep_xml(depth: int, tag: str = "d") -> str:
    return f"<{tag}>" * depth + f"</{tag}>" * depth


class TestDeepDocuments:
    def test_twigm_handles_depth_beyond_python_recursion(self):
        depth = sys.getrecursionlimit() + 2000
        xml = deep_xml(depth)
        results = evaluate("//d[not(d)]", xml)
        assert results == [depth]  # exactly the innermost element

    def test_pathm_handles_deep_documents(self):
        depth = sys.getrecursionlimit() + 2000
        results = evaluate("//d//d", deep_xml(depth))
        assert len(results) == depth - 1

    def test_stacks_track_depth_exactly(self):
        depth = 3000
        machine = TwigM("//d[x]")
        events = list(parse_string(deep_xml(depth)))
        machine.feed(events[:depth])  # all opens
        assert machine.total_stack_entries() == depth
        machine.feed(events[depth:])
        assert machine.total_stack_entries() == 0

    def test_tokenizer_is_iterative(self):
        depth = 50_000
        count = sum(1 for _ in parse_string(deep_xml(depth)))
        assert count == 2 * depth


class TestWideDocuments:
    def test_many_siblings(self):
        xml = "<r>" + "<a><b/></a>" * 20_000 + "</r>"
        assert len(evaluate("//a[b]", xml)) == 20_000

    def test_many_attributes(self):
        attrs = " ".join(f"k{i}='{i}'" for i in range(500))
        xml = f"<r><a {attrs}/></r>"
        assert evaluate("//a[@k499 = '499']", xml) == [2]

    def test_long_text_run(self):
        xml = f"<r><a>{'x' * 1_000_000}</a></r>"
        assert evaluate("//a[. != '']", xml) == [2]


class TestHostileQueries:
    def test_many_predicates_on_one_step(self):
        tags = "".join(f"[c{i}]" for i in range(40))
        xml = "<r><a>" + "".join(f"<c{i}/>" for i in range(40)) + "<t/></a></r>"
        assert evaluate(f"//a{tags}/t", xml) == [43]

    def test_deeply_nested_predicates(self):
        query = "//a[b[c[d[e[f]]]]]"
        xml = "<r><a><b><c><d><e><f/></e></d></c></b></a></r>"
        assert evaluate(query, xml) == [2]

    def test_long_trunk(self):
        steps = 60
        query = "/" + "/".join("s" for _ in range(steps))
        xml = "<s>" * steps + "</s>" * steps
        assert evaluate(query, xml) == [steps]

    def test_same_tag_everywhere(self):
        query = "//a[a]//a[a]/a"
        xml = "<a><a><a><a><a/></a></a></a></a>"
        from repro.baselines.navigational import NavigationalDomEngine

        events = list(parse_string(xml))
        oracle = sorted(NavigationalDomEngine().run(query, iter(events)))
        assert sorted(evaluate(query, iter(events))) == oracle

    def test_absurd_but_valid_wildcard_chain(self):
        query = "//*/*/*/*/*"
        xml = "<a><b><c><d><e><f/></e></d></c></b></a>"
        assert sorted(evaluate(query, xml)) == [5, 6]


class TestErrorPaths:
    def test_unknown_engine_errors_cleanly(self):
        with pytest.raises(ValueError):
            XPathStream("//a", engine="quantum")

    @pytest.mark.parametrize("query", ["", "//", "//a[", "a", "//a//", "//a[]"])
    def test_bad_queries_raise_syntax_errors(self, query):
        with pytest.raises(XPathSyntaxError):
            compile_query(query)

    @pytest.mark.parametrize(
        "xml",
        ["", "<", "<a", "<a><b>", "<a></b>", "text only", "<a/><b/>"],
    )
    def test_bad_documents_raise_xml_errors(self, xml):
        with pytest.raises(XmlSyntaxError):
            evaluate("//a", xml if "<" in xml else iter([xml]))

    def test_everything_is_a_repro_error(self):
        for exc_type in (XPathSyntaxError, XmlSyntaxError):
            assert issubclass(exc_type, ReproError)
