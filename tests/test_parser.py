"""Tests for the XPath parser (repro.xpath.parser)."""

import pytest

from repro.errors import XPathSyntaxError
from repro.xpath.ast import (
    CHILD,
    DESCENDANT,
    AndPredicate,
    AttributeTest,
    ComparisonPredicate,
    NameTest,
    PathPredicate,
    WildcardTest,
)
from repro.xpath.parser import parse_xpath


class TestTrunkParsing:
    def test_child_steps(self):
        path = parse_xpath("/a/b/c")
        assert [s.axis for s in path.steps] == [CHILD, CHILD, CHILD]
        assert [str(s.test) for s in path.steps] == ["a", "b", "c"]

    def test_descendant_steps(self):
        path = parse_xpath("//a//b")
        assert [s.axis for s in path.steps] == [DESCENDANT, DESCENDANT]

    def test_mixed_axes(self):
        path = parse_xpath("/a//b/c")
        assert [s.axis for s in path.steps] == [CHILD, DESCENDANT, CHILD]

    def test_wildcard_step(self):
        path = parse_xpath("//a/*/c")
        assert isinstance(path.steps[1].test, WildcardTest)

    def test_wildcard_return_node(self):
        path = parse_xpath("//a//*")
        assert isinstance(path.steps[-1].test, WildcardTest)

    def test_str_round_trip(self):
        for query in ("/a/b", "//a//b", "//a/*/c", "//a[b]/c"):
            assert str(parse_xpath(query)) == query


class TestPredicateParsing:
    def test_single_child_predicate(self):
        path = parse_xpath("//a[b]")
        (pred,) = path.steps[0].predicates
        assert isinstance(pred, PathPredicate)
        assert str(pred.path) == "b"

    def test_multiple_predicates_on_one_step(self):
        path = parse_xpath("//a[b][c]")
        assert len(path.steps[0].predicates) == 2

    def test_and_conjunction(self):
        path = parse_xpath("//a[b and c]")
        (pred,) = path.steps[0].predicates
        assert isinstance(pred, AndPredicate)
        assert len(pred.terms) == 2

    def test_nested_predicates(self):
        path = parse_xpath("//a[b[c]]")
        (outer,) = path.steps[0].predicates
        inner_step = outer.path.steps[0]
        assert len(inner_step.predicates) == 1

    def test_predicate_path_with_descendant(self):
        path = parse_xpath("//a[.//e]")
        (pred,) = path.steps[0].predicates
        assert pred.path.steps[0].axis == DESCENDANT

    def test_predicate_relative_child_dot_slash(self):
        path = parse_xpath("//a[./b]")
        (pred,) = path.steps[0].predicates
        assert pred.path.steps[0].axis == CHILD
        assert isinstance(pred.path.steps[0].test, NameTest)

    def test_predicate_multi_step_path(self):
        path = parse_xpath("//a[b/c//d]")
        (pred,) = path.steps[0].predicates
        assert [s.axis for s in pred.path.steps] == [CHILD, CHILD, DESCENDANT]

    def test_attribute_predicate(self):
        path = parse_xpath("//a[@id]")
        (pred,) = path.steps[0].predicates
        assert isinstance(pred.path.steps[-1].test, AttributeTest)

    def test_attribute_at_end_of_path(self):
        path = parse_xpath("//a[b/@id]")
        (pred,) = path.steps[0].predicates
        assert isinstance(pred.path.steps[-1].test, AttributeTest)
        assert str(pred.path.steps[0].test) == "b"

    def test_wildcard_in_predicate(self):
        path = parse_xpath("//a[*/c]")
        (pred,) = path.steps[0].predicates
        assert isinstance(pred.path.steps[0].test, WildcardTest)


class TestComparisonParsing:
    def test_string_comparison(self):
        (pred,) = parse_xpath("//a[b = 'x']").steps[0].predicates
        assert isinstance(pred, ComparisonPredicate)
        assert pred.op == "="
        assert pred.value == "x"

    def test_numeric_comparison(self):
        (pred,) = parse_xpath("//a[b < 30]").steps[0].predicates
        assert pred.op == "<"
        assert pred.value == 30.0

    @pytest.mark.parametrize("op", ["=", "!=", "<", "<=", ">", ">="])
    def test_all_operators(self, op):
        (pred,) = parse_xpath(f"//a[b {op} 1]").steps[0].predicates
        assert pred.op == op

    def test_attribute_comparison(self):
        (pred,) = parse_xpath("//a[@id = '7']").steps[0].predicates
        assert isinstance(pred.path.steps[-1].test, AttributeTest)
        assert pred.value == "7"

    def test_dot_comparison(self):
        (pred,) = parse_xpath("//a[. = 'x']").steps[0].predicates
        assert isinstance(pred, ComparisonPredicate)
        assert pred.path.steps == ()

    def test_text_comparison_drops_text_step(self):
        (pred,) = parse_xpath("//a[text() = 'x']").steps[0].predicates
        assert pred.path.steps == ()

    def test_path_then_text_comparison(self):
        (pred,) = parse_xpath("//a[b/text() = 'x']").steps[0].predicates
        assert [str(s.test) for s in pred.path.steps] == ["b"]

    def test_comparison_on_multi_step_path(self):
        (pred,) = parse_xpath("//a[b/c >= 10]").steps[0].predicates
        assert len(pred.path.steps) == 2


class TestParseErrors:
    @pytest.mark.parametrize(
        "query",
        [
            "",
            "   ",
            "a/b",              # must start with / or //
            "/",
            "//",
            "/a[",
            "/a[]",
            "/a[b",
            "/a]b",
            "//a[/b]",          # absolute path in predicate
            "//a[.]",           # bare dot without comparison
            "//a[text()]",      # text() without comparison
            "//a[b =]",
            "//a[= 'x']",
            "//a[b!]",
            "//@id",            # attribute on the trunk
            "//a/@id",          # attribute as result
            "//a[//@x]",        # descendant-to-attribute
            "//a[and]",
            "//a b",
        ],
    )
    def test_rejected(self, query):
        with pytest.raises(XPathSyntaxError):
            parse_xpath(query)

    def test_error_position(self):
        with pytest.raises(XPathSyntaxError) as info:
            parse_xpath("//a[b")
        assert info.value.position is not None
