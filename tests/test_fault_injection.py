"""Fault injection: seeded corruption campaigns and chunk-boundary hazards."""

from __future__ import annotations

import pytest

from repro import XPathStream
from repro.errors import ResourceLimitError, XmlSyntaxError
from repro.stream.events import (
    Characters,
    StartElement,
    validate_events,
    well_nested,
)
from repro.stream.expat_source import expat_parse_chunks
from repro.stream.faults import (
    FaultyChunks,
    FaultyEvents,
    InjectedFault,
    byte_split_chunks,
    corrupt_text,
)
from repro.stream.recovery import RecoveryPolicy, ResourceLimits, StreamDiagnostic
from repro.stream.tokenizer import parse_chunks, parse_string

from tests.conftest import chain_xml

BASE_DOCUMENT = (
    "<catalog>"
    "<book id='b1'><title>Streams &amp; Trees</title><price>25</price></book>"
    "<book id='b2'><title>café ☃</title><price>40</price></book>"
    "<note><![CDATA[raw <markup> here]]></note>"
    "</catalog>"
)


class TestDeterminism:
    def test_corrupt_text_reproducible(self):
        a = corrupt_text(BASE_DOCUMENT, seed=7, faults=3)
        b = corrupt_text(BASE_DOCUMENT, seed=7, faults=3)
        assert a == b

    def test_different_seeds_differ(self):
        mutants = {corrupt_text(BASE_DOCUMENT, seed=s)[0] for s in range(20)}
        assert len(mutants) > 1

    def test_faults_recorded(self):
        _, applied = corrupt_text(BASE_DOCUMENT, seed=3, faults=4)
        assert len(applied) == 4
        assert all(isinstance(f, InjectedFault) for f in applied)

    def test_faulty_chunks_replayable(self):
        wrapped = FaultyChunks(BASE_DOCUMENT, seed=11, faults=2)
        assert list(wrapped) == list(wrapped)


class TestByteSplitLossless:
    def test_concatenation_preserved(self):
        for seed in range(50):
            chunks = byte_split_chunks(BASE_DOCUMENT, seed=seed)
            assert "".join(chunks) == BASE_DOCUMENT

    def test_multibyte_boundaries_survive_tokenizer(self):
        expected = list(parse_string(BASE_DOCUMENT))
        for seed in range(25):
            chunks = byte_split_chunks(BASE_DOCUMENT, seed=seed, max_chunk=3)
            assert list(parse_chunks(chunks)) == expected

    def test_multibyte_boundaries_survive_expat(self):
        expected = [
            (type(e).__name__, getattr(e, "tag", getattr(e, "text", None)))
            for e in expat_parse_chunks([BASE_DOCUMENT])
        ]
        for seed in range(25):
            chunks = byte_split_chunks(BASE_DOCUMENT, seed=seed, max_chunk=3)
            got = [
                (type(e).__name__, getattr(e, "tag", getattr(e, "text", None)))
                for e in expat_parse_chunks(chunks)
            ]
            assert got == expected


class TestChunkBoundaryHazards:
    """Entities, CDATA markers, and tag names split across feed() calls."""

    HAZARDS = [
        ("<a>x&am", "p;y</a>", ["x&y"]),
        ("<a>&#x2", "603;</a>", ["☃"]),
        ("<a><![CDA", "TA[<raw>]]></a>", ["<raw>"]),
        ("<a><![CDATA[x]]", "></a>", ["x"]),
        ("<lo", "ng-name/>", []),
        ("<a attr='va", "lue'/>", []),
        ("<a><!-- com", "ment --></a>", []),
    ]

    @pytest.mark.parametrize("head,tail,texts", HAZARDS)
    def test_tokenizer_handles_split(self, head, tail, texts):
        events = list(parse_chunks([head, tail]))
        validate_events(events)
        assert [e.text for e in events if isinstance(e, Characters)] == texts

    @pytest.mark.parametrize("head,tail,texts", HAZARDS)
    def test_expat_handles_split(self, head, tail, texts):
        events = list(expat_parse_chunks([head, tail]))
        assert [e.text for e in events if isinstance(e, Characters)] == texts

    def test_every_split_point_of_document(self):
        expected = list(parse_string(BASE_DOCUMENT))
        for cut in range(1, len(BASE_DOCUMENT)):
            chunks = [BASE_DOCUMENT[:cut], BASE_DOCUMENT[cut:]]
            assert list(parse_chunks(chunks)) == expected, f"cut at {cut}"


class TestCorruptionCampaign:
    """The headline guarantee: ≥200 seeded corruptions under ``repair``
    never raise, never violate well-nesting, and every recovery action
    emits a diagnostic."""

    SEEDS = range(200)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_repair_never_raises_and_stays_well_nested(self, seed):
        wrapped = FaultyChunks(BASE_DOCUMENT, seed=seed, faults=1 + seed % 4)
        diagnostics: list[StreamDiagnostic] = []
        events = list(
            parse_chunks(
                wrapped,
                policy=RecoveryPolicy.REPAIR,
                on_diagnostic=diagnostics.append,
            )
        )
        assert well_nested(events), repr(wrapped)
        validate_events(events, allow_empty=True)
        for d in diagnostics:
            assert d.action in ("skipped", "repaired")
            assert d.message and d.line >= 1

    @pytest.mark.parametrize("seed", range(0, 200, 5))
    def test_skip_never_raises_either(self, seed):
        wrapped = FaultyChunks(BASE_DOCUMENT, seed=seed, faults=2)
        events = list(parse_chunks(wrapped, policy=RecoveryPolicy.SKIP))
        assert well_nested(events), repr(wrapped)

    @pytest.mark.parametrize("seed", range(0, 200, 5))
    def test_full_stream_pipeline_survives(self, seed):
        """XPathStream under repair + hardened limits: no exception besides
        an (acceptable) resource-limit trip, and close() always returns."""
        wrapped = FaultyChunks(BASE_DOCUMENT, seed=seed, faults=3)
        stream = XPathStream(
            "//book[price]//title",
            policy="repair",
            limits=ResourceLimits.hardened(),
        )
        try:
            for chunk in wrapped:
                stream.feed_text(chunk)
            ids = stream.close()
        except ResourceLimitError:
            return
        assert all(isinstance(i, int) for i in ids)

    def test_strict_policy_catches_most_corruptions(self):
        """Sanity: the campaign is actually injecting damage — strict mode
        must reject a healthy share of the same mutants."""
        rejected = 0
        for seed in range(100):
            wrapped = FaultyChunks(BASE_DOCUMENT, seed=seed, faults=2)
            try:
                list(parse_chunks(wrapped))
            except XmlSyntaxError:
                rejected += 1
        assert rejected > 30


class TestEventFaults:
    def test_dropped_end_detected_by_validator(self):
        base = list(parse_string(chain_xml(3, with_predicates=False)))
        damaged = 0
        for seed in range(40):
            mutated = list(FaultyEvents(base, seed=seed, faults=1))
            if not well_nested(mutated):
                damaged += 1
        assert damaged > 5

    def test_event_faults_deterministic(self):
        base = list(parse_string("<a><b/><c/></a>"))
        assert list(FaultyEvents(base, seed=9, faults=2)) == list(
            FaultyEvents(base, seed=9, faults=2)
        )
