"""repro.obs.trace: span nesting and Chrome trace_event output."""

from __future__ import annotations

import json

import pytest

from repro.obs.trace import Tracer


def fake_clock(times):
    """A deterministic monotonic clock fed from a list of seconds.

    The first value is consumed by the tracer's origin reading at
    construction time.
    """
    iterator = iter(times)
    return lambda: next(iterator)


def test_begin_end_pairs_and_timestamps():
    tracer = Tracer(clock=fake_clock([0.0, 0.0, 0.002]))
    tracer.begin("parse", size=10)
    tracer.end(events=3)
    begin, end = tracer.events
    assert begin["ph"] == "B" and begin["name"] == "parse"
    assert begin["ts"] == 0 and end["ts"] == pytest.approx(2000)  # µs
    assert begin["args"] == {"size": 10}
    assert end["args"] == {"events": 3}


def test_span_context_manager_closes_on_error():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("chunk"):
            raise RuntimeError("boom")
    assert not tracer.open_spans
    assert [event["ph"] for event in tracer.events] == ["B", "E"]


def test_end_without_begin_raises():
    tracer = Tracer()
    with pytest.raises(ValueError):
        tracer.end()


def test_nested_durations():
    tracer = Tracer(clock=fake_clock([0.0, 0.0, 0.0, 0.010, 0.030]))
    tracer.begin("outer")
    tracer.begin("inner")
    tracer.end()
    tracer.end()
    assert tracer.durations("inner") == [pytest.approx(0.010)]
    assert tracer.durations("outer") == [pytest.approx(0.030)]


def test_instant_event():
    tracer = Tracer()
    tracer.instant("emit", new=2)
    (event,) = tracer.events
    assert event["ph"] == "i"
    assert event["args"] == {"new": 2}


def test_chrome_trace_structure_and_dump(tmp_path):
    tracer = Tracer()
    with tracer.span("chunk", index=0):
        tracer.instant("emit")
    payload = tracer.to_chrome_trace()
    assert set(payload) >= {"traceEvents", "displayTimeUnit"}
    for event in payload["traceEvents"]:
        assert set(event) >= {"name", "cat", "ph", "ts", "pid", "tid"}
        assert isinstance(event["ts"], int)
    out = tmp_path / "trace.json"
    tracer.dump(out)
    assert json.loads(out.read_text())["traceEvents"] == payload["traceEvents"]


def test_timestamps_are_monotonic():
    tracer = Tracer()
    for index in range(5):
        with tracer.span("chunk", index=index):
            pass
    stamps = [event["ts"] for event in tracer.events]
    assert stamps == sorted(stamps)
