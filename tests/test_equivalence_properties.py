"""Property-based differential testing (Hypothesis).

Random documents × random XP{/,//,*,[]} queries: the streaming TwigM
evaluator must agree with the navigational DOM oracle on every pair.
This is the strongest correctness check in the suite — it explores
recursion patterns, predicate placements and axis mixes far beyond the
curated cases.
"""

from hypothesis import given, settings, strategies as st

from repro.baselines.navigational import NavigationalDomEngine
from repro.bench.systems import TwigmEngine
from repro.core.processor import XPathStream
from repro.stream.document import build_document
from repro.stream.tokenizer import parse_string
from repro.stream.writer import events_to_string

TAGS = ("a", "b", "c", "d")
ORACLE = NavigationalDomEngine()
TWIGM = TwigmEngine()


# -- random documents --------------------------------------------------------

@st.composite
def xml_trees(draw, depth=0):
    tag = draw(st.sampled_from(TAGS))
    attrs = ""
    if draw(st.booleans()):
        value = draw(st.integers(0, 3))
        attrs = f" k='{value}'"
    if depth >= 4:
        children = []
    else:
        children = draw(
            st.lists(xml_trees(depth=depth + 1), min_size=0, max_size=3)
        )
    text = draw(st.sampled_from(["", "", "", "1", "2", "x"]))
    return f"<{tag}{attrs}>{text}{''.join(children)}</{tag}>"


# -- random queries ----------------------------------------------------------

@st.composite
def predicate_atoms(draw, depth):
    kind = draw(st.sampled_from(["path", "attr", "value", "attr_value"]))
    if kind == "attr":
        return "@k"
    if kind == "attr_value":
        return f"@k = '{draw(st.integers(0, 3))}'"
    if kind == "value":
        return f". = '{draw(st.sampled_from(['1', '2', 'x']))}'"
    steps = draw(st.integers(1, 2)) if depth < 2 else 1
    parts = []
    for index in range(steps):
        axis = draw(st.sampled_from(["/", "//"]))
        name = draw(st.sampled_from(TAGS))
        if index == 0:
            parts.append(name if axis == "/" else f".//{name}")
        else:
            parts.append(f"{axis}{name}")
    return "".join(parts)


@st.composite
def predicates(draw, depth):
    """A bracketed predicate, sometimes with boolean connectives."""
    shape = draw(st.sampled_from(["atom", "atom", "atom", "or", "and", "not"]))
    if shape == "atom":
        return f"[{draw(predicate_atoms(depth=depth))}]"
    first = draw(predicate_atoms(depth=depth))
    second = draw(predicate_atoms(depth=depth))
    if shape == "or":
        return f"[{first} or {second}]"
    if shape == "and":
        return f"[{first} and {second}]"
    return f"[not({first})]"


@st.composite
def xpath_queries(draw):
    n_steps = draw(st.integers(1, 4))
    parts = []
    for index in range(n_steps):
        axis = draw(st.sampled_from(["/", "//"]))
        name = draw(st.sampled_from(TAGS + ("*",)))
        step = f"{axis}{name}"
        if name != "*" and draw(st.integers(0, 3)) == 0:
            step += draw(predicates(depth=1))
        parts.append(step)
    return "".join(parts)


# -- properties ---------------------------------------------------------------

@settings(max_examples=300, deadline=None)
@given(xml=xml_trees(), query=xpath_queries())
def test_twigm_agrees_with_oracle(xml, query):
    events = list(parse_string(xml))
    expected = sorted(ORACLE.run(query, iter(events)))
    actual = sorted(TWIGM.run(query, iter(events)))
    assert actual == expected, f"{query!r} over {xml!r}"


@settings(max_examples=150, deadline=None)
@given(xml=xml_trees(), query=xpath_queries())
def test_dispatched_engine_agrees_with_oracle(xml, query):
    """The PathM/BranchM fast paths are equivalent to TwigM."""
    events = list(parse_string(xml))
    expected = sorted(ORACLE.run(query, iter(events)))
    actual = sorted(XPathStream(query).evaluate(iter(events)))
    assert actual == expected, f"{query!r} over {xml!r}"


@settings(max_examples=150, deadline=None)
@given(xml=xml_trees())
def test_tokenizer_round_trip(xml):
    """parse → serialize → parse is the identity on events."""
    events = list(parse_string(xml, skip_whitespace=False))
    serialized = events_to_string(iter(events))
    assert list(parse_string(serialized, skip_whitespace=False)) == events


@settings(max_examples=100, deadline=None)
@given(xml=xml_trees())
def test_document_round_trip(xml):
    events = list(parse_string(xml, skip_whitespace=False))
    document = build_document(iter(events))
    assert list(document.to_events()) == events


@settings(max_examples=100, deadline=None)
@given(xml=xml_trees(), query=xpath_queries())
def test_twigm_stack_invariants(xml, query):
    """Stack levels are strictly increasing and bounded by the depth."""
    from repro.core.twigm import TwigM
    from repro.stream.events import document_depth

    events = list(parse_string(xml))
    depth = document_depth(iter(events))
    machine = TwigM(query)
    for event in events:
        machine.feed([event])
        for node in machine.machine.iter_nodes():
            stack = machine.stack_of(node)
            levels = [entry.level for entry in stack]
            assert levels == sorted(set(levels)), "levels strictly increasing"
            assert len(stack) <= depth, "stack bounded by document depth"
    assert machine.total_stack_entries() == 0
