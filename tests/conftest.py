"""Shared fixtures: the paper's running examples and small corpora."""

from __future__ import annotations

import pytest

from repro.stream.document import build_document
from repro.stream.tokenizer import parse_string


def chain_xml(n: int, with_predicates: bool = True) -> str:
    """The paper's figure 1 document: a₁/…/aₙ/b₁/…/bₙ/c₁.

    All ``a``s nest above all ``b``s, so every ``(aᵢ, bⱼ)`` pair embeds
    ``//a//b`` — the n² pattern matches of the introduction.  ``a₁`` has
    child ``d`` and ``b₁`` child ``e`` (the only nodes satisfying Q1's
    predicates); ``c₁`` sits under ``bₙ``.
    """
    parts = []
    for i in range(1, n + 1):
        parts.append("<a>")
        if with_predicates and i == 1:
            parts.append("<d/>")
    for j in range(1, n + 1):
        parts.append("<b>")
        if with_predicates and j == 1:
            parts.append("<e/>")
    parts.append("<c/>")
    parts.append("</b>" * n)
    parts.append("</a>" * n)
    return "".join(parts)


def chain_c1_id(n: int, with_predicates: bool = True) -> int:
    """Pre-order id of c₁ in :func:`chain_xml`."""
    per_pair = 2  # a and b per level
    extra = 2 if with_predicates else 0  # d and e
    return n * per_pair + extra + 1


@pytest.fixture
def figure1_xml() -> str:
    """Figure 1(a) with n = 4."""
    return chain_xml(4)


@pytest.fixture
def figure1_c1() -> int:
    return chain_c1_id(4)


@pytest.fixture
def figure2_xml() -> str:
    """Figure 2(a): nested a…a/b…b chain with c₁ at the bottom."""
    return chain_xml(3, with_predicates=False)


@pytest.fixture
def book_catalog_xml() -> str:
    """A small hand-written catalogue used across engine tests."""
    return (
        "<catalog>"
        "<book year='2003'>"
        "<title>Streams</title>"
        "<author><last>Chen</last><first>Yi</first></author>"
        "<price>25</price>"
        "<section id='1'><title>Intro</title>"
        "<section id='2'><title>Deep</title><p>text</p></section>"
        "</section>"
        "</book>"
        "<book year='1999'>"
        "<title>Automata</title>"
        "<author><last>Hopcroft</last><first>John</first></author>"
        "<price>60</price>"
        "<section id='3'><title>Machines</title></section>"
        "</book>"
        "</catalog>"
    )


@pytest.fixture
def book_catalog_document(book_catalog_xml):
    return build_document(parse_string(book_catalog_xml))


def ids_of(xml: str, tag: str) -> list[int]:
    """Pre-order ids of all elements with ``tag`` (test bookkeeping)."""
    from repro.stream.events import StartElement

    return [
        event.node_id
        for event in parse_string(xml)
        if isinstance(event, StartElement) and event.tag == tag
    ]
