"""Tests for the transform command-line front end (repro.transform.cli)."""

import json

import pytest

from repro.cli import main as top_main
from repro.errors import ReproError
from repro.transform.cli import main, parse_rules

DOC = (
    '<catalog><book id="1"><title>First</title><price>29</price></book>'
    '<book id="2"><title>Second</title><price>45</price></book>'
    "<note>keep</note></catalog>"
)


@pytest.fixture
def doc_path(tmp_path):
    path = tmp_path / "doc.xml"
    path.write_text(DOC)
    return str(path)


class TestSelectCommand:
    def test_fragments_to_stdout(self, doc_path, capsys):
        assert main(["select", "-q", "//book/title", doc_path]) == 0
        out = capsys.readouterr().out
        assert out == "<title>First</title>\n<title>Second</title>\n"

    def test_multiple_queries_labelled(self, doc_path, capsys):
        assert main(["select", "-q", "//title", "-q", "//note",
                     doc_path]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert "//title\t<title>First</title>" in lines
        assert "//note\t<note>keep</note>" in lines

    def test_query_file(self, doc_path, tmp_path, capsys):
        queries = tmp_path / "queries.txt"
        queries.write_text("titles\t//title\n# comment\n")
        assert main(["select", "--queries", str(queries), doc_path,
                     "--label"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("titles\t<title>First</title>")

    def test_output_file(self, doc_path, tmp_path):
        out_path = tmp_path / "out.txt"
        assert main(["select", "-q", "//note", doc_path,
                     "--output", str(out_path)]) == 0
        assert out_path.read_text() == "<note>keep</note>\n"

    def test_stats_json(self, doc_path, capsys):
        assert main(["select", "-q", "//title", doc_path, "--stats"]) == 0
        stats = json.loads(capsys.readouterr().err)
        assert stats["command"] == "select"
        assert stats["fragments"] == {"//title": 2}
        assert stats["events"] > 0

    def test_stdin(self, doc_path, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(DOC))
        assert main(["select", "-q", "//note"]) == 0
        assert capsys.readouterr().out == "<note>keep</note>\n"

    def test_no_queries_is_error(self, doc_path, capsys):
        assert main(["select", doc_path]) == 2
        assert "no queries" in capsys.readouterr().err

    def test_store_input(self, doc_path, tmp_path, capsys):
        from repro.store.replay import ingest

        store = str(tmp_path / "log")
        ingest(DOC, store)
        assert main(["select", "-q", "//note", "--store", store]) == 0
        assert capsys.readouterr().out == "<note>keep</note>\n"


class TestRewriteCommand:
    def test_drop_rule(self, doc_path, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text("//book\tdrop\n")
        assert main(["rewrite", "--rules", str(rules), doc_path]) == 0
        out = capsys.readouterr().out
        assert out == "<catalog><note>keep</note></catalog>\n"

    def test_rename_and_wrap(self, doc_path, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text("//book\trename\tentry\n//note\twrap\tmeta\n")
        assert main(["rewrite", "--rules", str(rules), doc_path]) == 0
        out = capsys.readouterr().out
        assert "<entry id=\"1\">" in out
        assert "<meta><note>keep</note></meta>" in out

    def test_stats_reports_rules_fired(self, doc_path, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text("//book\tdrop\n")
        assert main(["rewrite", "--rules", str(rules), doc_path,
                     "--stats"]) == 0
        stats = json.loads(capsys.readouterr().err)
        assert stats["rules_fired"] == {"//book": 2}

    def test_bad_rules_file(self, doc_path, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text("//book\texplode\n")
        assert main(["rewrite", "--rules", str(rules), doc_path]) == 2
        assert "unknown action" in capsys.readouterr().err


class TestParseRules:
    def test_all_actions(self, tmp_path):
        path = tmp_path / "rules.txt"
        path.write_text(
            "# comment\n"
            "//a\tdrop\n"
            "//b\trename\tc\n"
            "//d\twrap\te\n"
            "//f\treplace\t<g/>\n"
        )
        rules = parse_rules(str(path))
        assert [rule.action for rule in rules] == [
            "drop", "rename", "wrap", "replace"
        ]

    def test_missing_argument(self, tmp_path):
        path = tmp_path / "rules.txt"
        path.write_text("//a\trename\n")
        with pytest.raises(ReproError):
            parse_rules(str(path))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "rules.txt"
        path.write_text("# nothing\n")
        with pytest.raises(ReproError):
            parse_rules(str(path))


class TestTopLevelDispatch:
    def test_transform_subcommand_routed(self, doc_path, capsys):
        assert top_main(["transform", "select", "-q", "//note",
                         doc_path]) == 0
        assert capsys.readouterr().out == "<note>keep</note>\n"
