"""Unit tests for the :mod:`repro.compile` subsystem internals.

Complements the differential corpus (``test_compile_equivalence.py``)
with white-box checks: NFA/subset-construction algebra, lazy-DFA cache
behaviour and counters, state-cap and misalignment fallbacks, codegen
bookkeeping, turbo-scanner slow-path handling, and the
``repro_compile_*`` metrics families.
"""

import pytest

from repro.compile import (
    DEFAULT_STATE_CAP,
    CompiledBranchM,
    CompiledPathM,
    CompiledTwigM,
    DfaPathM,
    LazyDfa,
    compile_publisher,
    subset_step,
    trunk_steps,
)
from repro.core.pathm import PathM
from repro.core.processor import XPathStream
from repro.errors import UnsupportedQueryError
from repro.obs.metrics import MetricsRegistry
from repro.xpath.querytree import compile_query


# -- NFA / subset construction ----------------------------------------------


class TestNfa:
    def test_trunk_steps_shape(self):
        steps = trunk_steps(compile_query("//a/b//c"))
        assert [(s.name, s.descendant) for s in steps] == [
            ("a", True), ("b", False), ("c", True),
        ]

    def test_subset_step_advance_and_stay(self):
        query = compile_query("//a//b")
        steps = trunk_steps(query)
        accept = len(steps)
        s0 = frozenset([0])
        s_a = subset_step(steps, accept, s0, "a")
        assert 1 in s_a and 0 in s_a  # advanced + stayed (descendant root)
        s_ab = subset_step(steps, accept, s_a, "b")
        assert accept in s_ab
        # Unrelated tag from the initial state: '//' keeps position 0.
        assert subset_step(steps, accept, s0, "x") == s0

    def test_absorbing_accept_under_descendant_scope(self):
        query = compile_query("//a")
        steps = trunk_steps(query)
        s = subset_step(steps, 1, frozenset([0]), "a")
        assert 1 in s
        # Every descendant of a solution under '//a' is reached via the
        # stay-rule on position 0, so 'a' below 'a' accepts again.
        deeper = subset_step(steps, 1, s, "a")
        assert 1 in deeper

    def test_lazy_dfa_counts_states_lazily(self):
        dfa = LazyDfa(compile_query("//a/b"))
        assert dfa.state_count == 1  # only the initial state exists
        state = dfa.step(dfa.initial, "a")
        dfa.step(state, "b")
        assert dfa.state_count >= 2
        assert dfa.transition_count >= 2

    def test_predicates_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            LazyDfa(compile_query("//a[b]/c"))


# -- DfaPathM ----------------------------------------------------------------

DOC_EVENTS = [
    # (tag, level) starts interleaved with ends, driving the machine raw.
    ("s", "r", 1), ("s", "a", 2), ("s", "b", 3), ("e", "b", 3),
    ("s", "c", 3), ("s", "b", 4), ("e", "b", 4), ("e", "c", 3),
    ("e", "a", 2), ("e", "r", 1),
]


def _drive(machine, events=DOC_EVENTS):
    next_id = 0
    for kind, tag, level in events:
        if kind == "s":
            machine.start_element(tag, level, next_id)
            next_id += 1
        else:
            machine.end_element(tag, level)
    return machine


class TestDfaPathM:
    def test_matches_interpreted_pathm(self):
        for query in ("//a/b", "//b", "/r//b", "//a//b", "//*/b"):
            assert _drive(DfaPathM(query)).results == \
                _drive(PathM(query)).results

    def test_transition_cache_hit_ratio(self):
        dfa = _drive(DfaPathM("//a/b"))
        # Second identical document: all transitions cached.
        misses_after_first = dfa._misses
        dfa.reset()
        _drive(dfa)
        assert dfa._misses == misses_after_first
        assert dfa._starts > dfa._misses

    def test_state_cap_falls_back_to_pathm(self):
        dfa = DfaPathM("//a/b", state_cap=1)
        _drive(dfa)
        assert dfa.fell_back
        assert dfa._fallbacks == 1
        assert dfa.results == _drive(PathM("//a/b")).results

    def test_default_cap_is_generous(self):
        assert DfaPathM("//a/b")._state_cap == DEFAULT_STATE_CAP

    def test_mid_stream_attach_misalignment_falls_back(self):
        dfa = DfaPathM("//b")
        # First event arrives at depth 3: depth-implicit tracking is
        # unsound, the machine must delegate to PathM immediately.
        dfa.start_element("b", 3, 7)
        assert dfa.fell_back
        assert dfa.results == [7]

    def test_predicates_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            DfaPathM("//a[b]")

    def test_snapshot_restores_nfa_config_not_cache(self):
        dfa = DfaPathM("//a//b")
        dfa.start_element("r", 1, 0)
        dfa.start_element("a", 2, 1)
        snap = dfa.snapshot_state()
        assert snap["dfa"]["tags"] == ["r", "a"]
        fresh = DfaPathM("//a//b")
        fresh.restore_state(snap)
        assert fresh.dfa_transition_count == 0  # cache rebuilt lazily
        fresh.start_element("b", 3, 2)
        assert fresh.results == [2]


# -- generated dispatch (codegen) --------------------------------------------


class TestCodegen:
    def test_compiled_classes_report_base_engine_names(self):
        assert CompiledPathM.machine_name == "pathm"
        assert CompiledBranchM.machine_name == "branchm"
        assert CompiledTwigM.machine_name == "twigm"

    def test_compiled_pathm_matches(self):
        assert _drive(CompiledPathM("//a/b")).results == \
            _drive(PathM("//a/b")).results

    def test_tracker_rejected_on_compiled_twigm(self):
        class Tracker:
            pass

        with pytest.raises(ValueError):
            CompiledTwigM("//a[b]", tracker=Tracker())

    def test_codegen_counter_published(self):
        registry = MetricsRegistry()
        CompiledPathM("//a/b", metrics=registry)
        publisher = compile_publisher(registry)
        assert publisher._codegen.get(engine="pathm") > 0


# -- engine selection through XPathStream ------------------------------------


class TestSelection:
    def test_auto_compiled_prefers_dfa_for_paths(self):
        assert XPathStream("//a/b", compiled=True).engine_name == "dfa"

    def test_explicit_pathm_keeps_pathm_name(self):
        stream = XPathStream("//a/b", engine="pathm", compiled=True)
        assert stream.engine_name == "pathm"
        assert type(stream.push_handler()).__name__ == "CompiledPathM"

    def test_predicates_get_generated_twigm(self):
        stream = XPathStream("//a[b]/c", compiled=True)
        assert type(stream.push_handler()).__name__ == "CompiledTwigM"

    def test_engine_dfa_implies_compiled(self):
        stream = XPathStream("//a/b", engine="dfa")
        assert stream._compiled
        assert stream.snapshot()["engine"] == "dfa"


# -- turbo scanner slow paths ------------------------------------------------

TRICKY = (
    "<?xml version='1.0'?><r><a><b>x</b></a></r>",
    "<r><!-- c --><a><![CDATA[<b>]]><b/></a></r>",
    "<r><a>one &amp; two<b>t</b></a></r>",
    "<r><a k='1' m=\"2\"><b></b></a></r>",
    "<r>\n  <a>\n    <b>leaf</b>\n  </a>\n</r>",
    "<r><a><b>t1</b><b>t2</b><b/></a></r>",
)


class TestTurboScanner:
    @pytest.mark.parametrize("doc", TRICKY)
    def test_tricky_markup_matches_reference(self, doc):
        for query in ("//a/b", "//b", "//a//b"):
            reference = XPathStream(query).evaluate(doc)
            assert XPathStream(query, compiled=True).evaluate_push(doc) == \
                reference

    @pytest.mark.parametrize("doc", TRICKY)
    def test_single_char_chunks_match(self, doc):
        stream = XPathStream("//a/b", compiled=True)
        for ch in doc:
            stream.feed_text_push(ch)
        assert stream.close() == XPathStream("//a/b").evaluate(doc)

    def test_duplicate_attribute_still_an_error(self):
        from repro.errors import XmlSyntaxError

        stream = XPathStream("//a/b", compiled=True)
        with pytest.raises(XmlSyntaxError):
            stream.evaluate_push("<r><a k='1' k='2'><b/></a></r>")

    def test_mismatched_end_tag_still_an_error(self):
        from repro.errors import XmlSyntaxError

        stream = XPathStream("//a/b", compiled=True)
        with pytest.raises(XmlSyntaxError):
            stream.evaluate_push("<r><a><b></a></b></r>")


# -- metrics publisher -------------------------------------------------------


class TestCompileMetrics:
    def test_dfa_families_populated(self):
        registry = MetricsRegistry()
        stream = XPathStream("//a/b", compiled=True, metrics=registry)
        stream.evaluate("<r><a><b/></a><a><b/></a></r>")
        rendered = registry.render_prometheus()
        for family in (
            "repro_compile_dfa_states",
            "repro_compile_dfa_transitions",
            "repro_compile_dfa_starts_total",
            "repro_compile_dfa_misses_total",
            "repro_compile_hit_ratio",
            "repro_compile_fallbacks_total",
        ):
            assert family in rendered

    def test_hit_ratio_improves_on_second_document(self):
        registry = MetricsRegistry()
        stream = XPathStream("//a/b", compiled=True, metrics=registry)
        doc = "<r>" + "<a><b/></a>" * 20 + "</r>"
        stream.evaluate(doc)
        publisher = compile_publisher(registry)
        publisher._collect()
        first = publisher._hit_ratio.get(engine="dfa")
        stream.reset()
        stream.evaluate(doc)
        publisher._collect()
        assert publisher._hit_ratio.get(engine="dfa") > first

    def test_fallback_counted(self):
        registry = MetricsRegistry()
        stream = XPathStream(
            "//*/b", compiled=True, state_cap=1, metrics=registry
        )
        stream.evaluate("<r><a><b/></a></r>")
        publisher = compile_publisher(registry)
        publisher._collect()
        assert publisher._fallbacks.get(engine="dfa") >= 1

    def test_publisher_is_per_registry_singleton(self):
        registry = MetricsRegistry()
        assert compile_publisher(registry) is compile_publisher(registry)

    def test_zero_cost_when_off(self):
        # Without a registry the engine must not import the obs layer.
        dfa = DfaPathM("//a/b")
        _drive(dfa)
        assert not hasattr(dfa, "registry")
