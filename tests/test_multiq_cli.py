"""The ``python -m repro multiq`` front end (repro.multiq.cli)."""

from __future__ import annotations

import pytest

from repro.multiq.cli import main as multiq_main

XML = (
    "<catalog>"
    "<book year='2006'><price>25</price><title>A</title></book>"
    "<book year='1999'><price>60</price><title>B</title></book>"
    "</catalog>"
)


@pytest.fixture
def xml_file(tmp_path):
    path = tmp_path / "catalog.xml"
    path.write_text(XML)
    return str(path)


@pytest.fixture
def queries_file(tmp_path):
    path = tmp_path / "standing.txt"
    path.write_text(
        "# standing queries\n"
        "cheap\t//book[price < 30]/title\n"
        "titles //title\n"
        "\n"
    )
    return str(path)


def test_queries_file_incremental_output(xml_file, queries_file, capsys):
    assert multiq_main(["--queries", queries_file, xml_file]) == 0
    out = capsys.readouterr().out.splitlines()
    assert "cheap\t4" in out
    assert "titles\t4" in out and "titles\t7" in out


def test_inline_queries_and_counts(xml_file, capsys):
    code = multiq_main(
        ["-e", "t=//title", "-e", "missing=//zzz", "--count", xml_file]
    )
    assert code == 0
    assert capsys.readouterr().out.splitlines() == ["t\t2", "missing\t0"]


def test_stats_on_stderr(xml_file, capsys):
    assert multiq_main(["-e", "t=//title", "--stats", xml_file]) == 0
    err = capsys.readouterr().err
    assert "queries=1" in err and "reduction=" in err


def test_explain_reports_canonical_and_machine(xml_file, capsys):
    code = multiq_main(
        ["-e", "a=//title", "-e", "b=//book[./title]", "--explain", xml_file]
    )
    assert code == 0
    err = capsys.readouterr().err
    assert "[pathm]" in err
    assert "//book[title]" in err  # canonical spelling, not the input
    assert "2 queries -> 2 machines" in err


def test_dedup_visible_in_explain(xml_file, capsys):
    multiq_main(["-e", "a=//title", "-e", "b=//title", "--explain", xml_file])
    assert "2 queries -> 1 machines" in capsys.readouterr().err


def test_no_match_exits_1(xml_file):
    assert multiq_main(["-e", "q=//nothing", xml_file]) == 1


def test_no_queries_exits_2(xml_file, capsys):
    assert multiq_main([xml_file]) == 2
    assert "no standing queries" in capsys.readouterr().err


def test_bad_inline_spec_exits_2(xml_file, capsys):
    assert multiq_main(["-e", "not-a-spec", xml_file]) == 2


def test_duplicate_names_across_sources_exit_2(xml_file, queries_file, capsys):
    assert multiq_main(["--queries", queries_file, "-e", "titles=//a", xml_file]) == 2
    assert "duplicate" in capsys.readouterr().err


def test_stdin_source(monkeypatch, capsys):
    import io

    monkeypatch.setattr("sys.stdin", io.StringIO(XML))
    assert multiq_main(["-e", "t=//title"]) == 0
    assert "t\t4" in capsys.readouterr().out


def test_repro_cli_routes_multiq_subcommand(xml_file, capsys):
    from repro.cli import main as repro_main

    assert repro_main(["multiq", "-e", "t=//title", xml_file]) == 0
    assert "t\t4" in capsys.readouterr().out
