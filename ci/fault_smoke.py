"""CI smoke: the full pipeline under repair + tight resource limits.

Runs seeded corruption campaigns through XPathStream with a
deliberately tight ResourceLimits profile — through **both** text
entrypoints:

* the pull path (``feed_text``: tokenizer → event objects → machine);
* the fused push path (``feed_text_push``: regex scanner → direct
  machine dispatch, no event objects) — the path serving sessions and
  the perf pipeline ride.

Three outcomes are acceptable per seed: a clean result, a clean result
after recovery (with diagnostics), or a ResourceLimitError.  Anything
else — any other exception, a hang, unbounded growth, or the two paths
disagreeing on a clean parse — fails the build.

Usage: PYTHONPATH=src python ci/fault_smoke.py [seeds]
"""

from __future__ import annotations

import sys

from repro import ResourceLimits, XPathStream
from repro.errors import ResourceLimitError
from repro.stream.faults import FaultyChunks

DOCUMENT = (
    "<catalog>"
    + "".join(
        f"<book id='b{i}'><title>t{i} ☃</title><price>{i}</price></book>"
        for i in range(12)
    )
    + "<note><![CDATA[raw <markup>]]></note></catalog>"
)

QUERY = "//book[price]//title"

TIGHT = ResourceLimits(
    max_depth=16,
    max_attributes=8,
    max_attribute_length=256,
    max_text_length=4096,
    max_buffered_input=8192,
    max_buffered_candidates=256,
    max_total_events=10_000,
)

#: Sentinel result meaning "this campaign tripped a resource limit".
_LIMITED = object()


def _campaign(seed: int, push: bool, diagnostics: list):
    """One seeded corruption campaign; returns ids, _LIMITED, or raises."""
    wrapped = FaultyChunks(DOCUMENT, seed=seed, faults=1 + seed % 5)
    stream = XPathStream(
        QUERY,
        policy="repair",
        on_diagnostic=diagnostics.append,
        limits=TIGHT,
    )
    feed = stream.feed_text_push if push else stream.feed_text
    try:
        for chunk in wrapped:
            feed(chunk)
        return stream.close(), wrapped
    except ResourceLimitError:
        return _LIMITED, wrapped


def main(seeds: int) -> int:
    limited = 0
    recovered = 0
    diverged = 0
    for seed in range(seeds):
        outcomes = {}
        for push in (False, True):
            label = "push" if push else "pull"
            diagnostics: list = []
            try:
                ids, wrapped = _campaign(seed, push, diagnostics)
            except Exception as exc:  # noqa: BLE001 - the point of the smoke
                print(
                    f"FAIL seed={seed} path={label}: "
                    f"{type(exc).__name__}: {exc}"
                )
                return 1
            if ids is _LIMITED:
                limited += 1
                continue
            if diagnostics:
                recovered += 1
            assert all(isinstance(i, int) for i in ids), (seed, label)
            outcomes[label] = (ids, bool(diagnostics))
        # When neither path needed repair, they saw the same bytes and
        # must agree exactly.  (Repairs may legitimately differ: the
        # two tokenizer paths resynchronise at different granularity.)
        if len(outcomes) == 2:
            (pull_ids, pull_repaired) = outcomes["pull"]
            (push_ids, push_repaired) = outcomes["push"]
            if not pull_repaired and not push_repaired:
                if pull_ids != push_ids:
                    print(
                        f"FAIL seed={seed}: clean pull/push divergence "
                        f"{pull_ids} != {push_ids}"
                    )
                    return 1
            elif pull_ids != push_ids:
                diverged += 1
    print(
        f"ok: {seeds} corruption campaigns x 2 paths "
        f"({recovered} recovered, {limited} resource-limited, "
        f"{diverged} repair-path divergences, 0 crashes)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(int(sys.argv[1]) if len(sys.argv) > 1 else 500))
