"""CI smoke: the full pipeline under repair + tight resource limits.

Runs 500 seeded corruption campaigns through XPathStream with a
deliberately tight ResourceLimits profile.  Three outcomes are
acceptable per seed: a clean result, a clean result after recovery
(with diagnostics), or a ResourceLimitError.  Anything else — any other
exception, a hang, unbounded growth — fails the build.

Usage: PYTHONPATH=src python ci/fault_smoke.py [seeds]
"""

from __future__ import annotations

import sys

from repro import ResourceLimits, XPathStream
from repro.errors import ResourceLimitError
from repro.stream.faults import FaultyChunks

DOCUMENT = (
    "<catalog>"
    + "".join(
        f"<book id='b{i}'><title>t{i} ☃</title><price>{i}</price></book>"
        for i in range(12)
    )
    + "<note><![CDATA[raw <markup>]]></note></catalog>"
)

TIGHT = ResourceLimits(
    max_depth=16,
    max_attributes=8,
    max_attribute_length=256,
    max_text_length=4096,
    max_buffered_input=8192,
    max_buffered_candidates=256,
    max_total_events=10_000,
)


def main(seeds: int) -> int:
    limited = 0
    recovered = 0
    for seed in range(seeds):
        wrapped = FaultyChunks(DOCUMENT, seed=seed, faults=1 + seed % 5)
        diagnostics = []
        stream = XPathStream(
            "//book[price]//title",
            policy="repair",
            on_diagnostic=diagnostics.append,
            limits=TIGHT,
        )
        try:
            for chunk in wrapped:
                stream.feed_text(chunk)
            ids = stream.close()
        except ResourceLimitError:
            limited += 1
            continue
        except Exception as exc:  # noqa: BLE001 - the point of the smoke
            print(f"FAIL seed={seed} {wrapped!r}: {type(exc).__name__}: {exc}")
            return 1
        if diagnostics:
            recovered += 1
        assert all(isinstance(i, int) for i in ids), seed
    print(
        f"ok: {seeds} corruption campaigns "
        f"({recovered} recovered, {limited} resource-limited, 0 crashes)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(int(sys.argv[1]) if len(sys.argv) > 1 else 500))
