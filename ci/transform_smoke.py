"""CI smoke: the streaming transformation layer on XMark.

Four gates over one XMark document, each a hard failure:

1. **Pull ≡ push fragments.**  Substream extraction of several queries
   (immediate and predicate-gated) must produce byte-identical fragment
   lists under the pull pipeline, the fused push pipeline, and a
   chunked push feed.

2. **Snapshot resume.**  An extractor snapshotted mid-document (inside
   a streaming fragment) and restored from the JSON round-trip must
   finish with fragments byte-identical to an uninterrupted run.

3. **Rewrite idempotence.**  A rename/drop rule set applied to its own
   output must be the identity — rewritten output re-rewritten is
   byte-identical (wrap is intentionally excluded: wrapping twice is
   the *correct* non-idempotent semantics).

4. **Store replay.**  Extraction driven by ``replay_into`` over a
   durable event log must match direct evaluation of the text.

The run is recorded as ``BENCH_transform.json`` (fragments/s, MB/s,
dead-branch skip ratio) for trajectory tracking.

Usage: PYTHONPATH=src python ci/transform_smoke.py [scale]
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import time

from repro.datasets.xmark import xmark_events
from repro.stream.tokenizer import XmlTokenizer
from repro.stream.writer import events_to_string
from repro.transform.combinators import tee
from repro.transform.extract import SubstreamExtractor
from repro.transform.rewrite import RewriteEngine, drop, rename

QUERIES = {
    "names": "//item/name",
    "sellers": "//open_auction[seller]/seller",
    "emails": "//person[name]/emailaddress",
}

def fail(message: str) -> int:
    print(f"FAIL: {message}")
    return 1


def fragment_gate(text: str, bench: dict) -> "int | None":
    pull = SubstreamExtractor(dict(QUERIES)).evaluate(text)
    started = time.perf_counter()
    push = SubstreamExtractor(dict(QUERIES)).evaluate_push(text)
    elapsed = time.perf_counter() - started
    if pull != push:
        return fail("pull and push fragment lists diverge")
    chunked = SubstreamExtractor(dict(QUERIES))
    for index in range(0, len(text), 4096):
        chunked.feed_text(text[index:index + 4096])
    if chunked.close() != pull:
        return fail("chunked push fragments diverge from one-shot pull")
    total_bytes = sum(len(f.text) for f in push)
    bench["extract"] = {
        "fragments": len(push),
        "fragment_bytes": total_bytes,
        "fragments_per_s": round(len(push) / elapsed) if elapsed else None,
        "mb_per_s": round(total_bytes / 1e6 / elapsed, 2) if elapsed else None,
    }
    return None


def snapshot_gate(text: str, bench: dict) -> "int | None":
    reference = SubstreamExtractor(dict(QUERIES)).evaluate_push(text)
    extractor = SubstreamExtractor(dict(QUERIES))
    cut = len(text) // 2
    extractor.feed_text(text[:cut])
    blob = json.loads(json.dumps(extractor.snapshot()))
    restored = SubstreamExtractor.restore(blob)
    restored.feed_text(text[cut:])
    if restored.close() != reference:
        return fail("snapshot/restore fragments diverge from one-shot run")
    bench["snapshot_chars"] = len(json.dumps(blob))
    return None


def idempotence_gate(text: str, bench: dict) -> "int | None":
    def rules():
        return [drop("//annotation"), rename("//emailaddress", "email"),
                drop("//open_auction[privacy]")]

    started = time.perf_counter()
    once = RewriteEngine(rules()).evaluate_push(text)
    elapsed = time.perf_counter() - started
    twice = RewriteEngine(rules()).evaluate_push(once)
    if twice != once:
        return fail("rewrite applied to its own output is not the identity")
    pull = RewriteEngine(rules()).evaluate(text)
    if pull != once:
        return fail("pull and push rewrite outputs diverge")
    bench["rewrite"] = {
        "input_chars": len(text),
        "output_chars": len(once),
        "mb_per_s": round(len(text) / 1e6 / elapsed, 2) if elapsed else None,
    }
    return None


def replay_gate(text: str, workdir: str, bench: dict) -> "int | None":
    from repro.store.replay import ingest, replay_into

    store = os.path.join(workdir, "log")
    ingest(text, store, segment_events=512, sync="none")
    direct = SubstreamExtractor(dict(QUERIES)).evaluate_push(text)
    extractor = SubstreamExtractor(dict(QUERIES))
    replay_into(extractor, store, close=False)
    if extractor.close() != direct:
        return fail("store-replay fragments diverge from direct evaluation")

    # Dead-branch skipping: a tee of the selective extractors sees the
    # same fragments while skipping events outside their alphabets.
    branches = [SubstreamExtractor({name: query})
                for name, query in QUERIES.items()]
    fan = tee(*branches)
    XmlTokenizer().feed_into(text, fan)
    teed = [fragment for result in fan.close() for fragment in result]
    if sorted(f.text for f in teed) != sorted(f.text for f in direct):
        return fail("teed extraction fragments diverge")
    bench["tee_skip_ratio"] = round(fan.skip_ratio, 4)
    return None


def main(scale: float) -> int:
    text = events_to_string(xmark_events(scale))
    bench: dict = {"scale": scale, "document_chars": len(text)}

    code = fragment_gate(text, bench)
    if code is not None:
        return code
    extract = bench["extract"]
    print(
        f"fragment gate ok: {extract['fragments']} fragments byte-identical "
        f"across pull, push, and chunked push"
    )

    code = snapshot_gate(text, bench)
    if code is not None:
        return code
    print("snapshot gate ok: mid-document restore finishes byte-identical")

    code = idempotence_gate(text, bench)
    if code is not None:
        return code
    print("idempotence gate ok: rewrite of rewritten output is the identity")

    workdir = tempfile.mkdtemp(prefix="transform_smoke_")
    try:
        code = replay_gate(text, workdir, bench)
        if code is not None:
            return code
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    print(
        f"replay gate ok: store replay matches direct evaluation "
        f"(tee skip ratio {bench['tee_skip_ratio']:.2f})"
    )

    with open("BENCH_transform.json", "w", encoding="utf-8") as handle:
        json.dump(bench, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("ok: BENCH_transform.json written")
    return 0


if __name__ == "__main__":
    sys.exit(main(float(sys.argv[1]) if len(sys.argv) > 1 else 1.0))
