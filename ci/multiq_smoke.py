"""CI smoke: 1000 standing queries over XMark through the multiq engine.

Checks the two acceptance properties of the shared dispatch engine:

1. **Exactness** — routed multi-query results are byte-identical to
   evaluating every query independently with its own
   :class:`repro.core.processor.XPathStream` (the broadcast oracle).
2. **Routing win** — the alphabet router delivers at least 5x fewer
   machine events than broadcast would on the 1000-query workload.

It then runs the full 10/100/1000 scaling benchmark and writes
``BENCH_multiq.json`` so the perf trajectory is recorded per commit.

Run from the repo root::

    PYTHONPATH=src python ci/multiq_smoke.py
"""

from __future__ import annotations

import sys

from repro.bench.multiq import multiq_workload, run_benchmark, write_report
from repro.core.processor import XPathStream
from repro.datasets.xmark import xmark_events
from repro.multiq.engine import MultiQueryEngine

QUERY_COUNT = 1000
SCALE = 1.0
MIN_REDUCTION = 5.0
REPORT = "BENCH_multiq.json"


def main() -> int:
    queries = multiq_workload(QUERY_COUNT)
    events = list(xmark_events(SCALE))
    print(f"multiq smoke: {len(queries)} queries, {len(events)} events")

    engine = MultiQueryEngine(queries)
    engine.feed_events(events)
    routed = engine.results()
    stats = engine.dispatch_stats()
    print(
        f"  {stats.units} machines, dispatched {stats.machine_events_dispatched} "
        f"of {stats.machine_events_broadcast} broadcast machine-events "
        f"({stats.reduction:.2f}x reduction)"
    )

    failures = 0
    for name, query in queries.items():
        expected = XPathStream(query).evaluate(events)
        if routed[name] != expected:
            failures += 1
            if failures <= 5:
                print(
                    f"  MISMATCH {name} ({query}): "
                    f"routed={routed[name]} expected={expected}",
                    file=sys.stderr,
                )
    if failures:
        print(
            f"FAIL: {failures}/{len(queries)} queries diverge from "
            f"independent evaluation",
            file=sys.stderr,
        )
        return 1
    print(f"  all {len(queries)} query results identical to independent evaluation")

    if stats.reduction < MIN_REDUCTION:
        print(
            f"FAIL: dispatch reduction {stats.reduction:.2f}x is below the "
            f"{MIN_REDUCTION:.0f}x target",
            file=sys.stderr,
        )
        return 1

    payload = run_benchmark()
    write_report(payload, REPORT)
    for row in payload["rows"]:
        print(
            f"  bench: {row['queries']:>4} queries  "
            f"{row['events_per_sec']:>8} events/s  "
            f"reduction {row['reduction']:.2f}x"
        )
    print(f"wrote {REPORT}")
    print("multiq smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
