"""CI gate: the documentation may not point at things that don't exist.

Two checks over ``README.md``, ``DESIGN.md`` and every ``docs/*.md``:

1. **Relative links resolve** — every markdown link whose target is not
   an absolute URL (``http(s)://``, ``mailto:``) or a pure in-page
   anchor must name a file or directory that exists, relative to the
   linking document (anchors are stripped before checking).
2. **Dotted API names resolve** — every ``repro.foo.Bar``-style
   reference must import: the longest importable module prefix is
   found, and the remainder must resolve via ``getattr`` chains.  This
   catches docs that keep advertising renamed or deleted APIs.
3. **Metric families exist** — every ``repro_*`` metric family named in
   ``docs/OBSERVABILITY.md`` and ``docs/LATENCY.md`` must appear in the
   metric catalog (:mod:`repro.obs.catalog`), whose own completeness is
   enforced by ``tests/test_metric_catalog.py``.  This catches docs
   that keep advertising renamed or deleted metrics.

Run from the repo root::

    PYTHONPATH=src python ci/docs_check.py
"""

from __future__ import annotations

import importlib
import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
DOTTED = re.compile(r"\brepro(?:\.[A-Za-z_]\w*)+")
METRIC = re.compile(r"\brepro_[a-z0-9_]+")

#: Dotted names that look like APIs but are prose, not code.
ALLOWED_UNRESOLVED: set[str] = set()

#: Documents whose repro_* metric mentions must exist in the catalog.
METRIC_DOCS = ("docs/OBSERVABILITY.md", "docs/LATENCY.md")


def doc_files(root: Path) -> list[Path]:
    files = [root / "README.md", root / "DESIGN.md"]
    files += sorted((root / "docs").glob("*.md"))
    return [path for path in files if path.exists()]


def check_links(path: Path, root: Path) -> list[str]:
    failures = []
    for target in LINK.findall(path.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            continue  # in-page anchor
        plain = target.split("#", 1)[0]
        resolved = (path.parent / plain).resolve()
        if not resolved.exists():
            failures.append(
                f"{path.relative_to(root)}: broken link {target!r} "
                f"(no {resolved.relative_to(root)})"
            )
    return failures


def resolve_dotted(name: str) -> bool:
    """True when ``name`` imports as a module[.attribute...] chain."""
    parts = name.split(".")
    for cut in range(len(parts), 0, -1):
        try:
            obj = importlib.import_module(".".join(parts[:cut]))
        except ImportError:
            continue
        try:
            for attr in parts[cut:]:
                obj = getattr(obj, attr)
        except AttributeError:
            return False
        return True
    return False


def check_symbols(path: Path, root: Path) -> list[str]:
    failures = []
    for name in sorted(set(DOTTED.findall(path.read_text(encoding="utf-8")))):
        if name in ALLOWED_UNRESOLVED:
            continue
        if not resolve_dotted(name):
            failures.append(
                f"{path.relative_to(root)}: dangling API reference {name!r}"
            )
    return failures


def check_metrics(path: Path, root: Path) -> list[str]:
    """Every repro_* family the document names must be catalogued."""
    from repro.obs.catalog import known_family

    failures = []
    for name in sorted(set(METRIC.findall(path.read_text(encoding="utf-8")))):
        if not known_family(name):
            failures.append(
                f"{path.relative_to(root)}: unknown metric family {name!r} "
                f"(not in repro.obs.catalog.METRIC_FAMILIES)"
            )
    return failures


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    failures: list[str] = []
    files = doc_files(root)
    metric_docs = {root / rel for rel in METRIC_DOCS}
    for path in files:
        failures += check_links(path, root)
        failures += check_symbols(path, root)
        if path in metric_docs:
            failures += check_metrics(path, root)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print(f"docs check: {len(files)} files, all links and API references "
          "resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
