"""CI smoke: the durable ingest log under crash, replay, and skip gates.

Three gates over one XMark recording, each a hard failure:

1. **Crash recovery.**  Ingest with an engine attached, then simulate a
   SIGKILL mid-segment by truncating the active segment at an arbitrary
   byte boundary (and once more with a bit flip).  Reopening the store
   must recover to the last intact record, re-ingesting the remainder
   must converge, and a full replay must be byte-identical to live
   evaluation of the whole document — for pull AND push references.

2. **Checkpoint replay.**  Replay resumed from *every* embedded
   checkpoint must produce the same results as the cold replay and the
   live run.

3. **Index skipping.**  A selective query's replay must skip >= 50% of
   the sealed segments while returning results identical to an
   unskipped replay.

The run is recorded as ``BENCH_store.json`` (events/s for ingest and
replay, skip ratio, recovery accounting) for trajectory tracking.

Usage: PYTHONPATH=src python ci/store_smoke.py [scale]
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import time

from repro.datasets.xmark import xmark_events
from repro.multiq.engine import MultiQueryEngine
from repro.store import EventLogReader, EventLogWriter, ReplayStats, ingest, replay
from repro.store.replay import _Tee
from repro.stream.tokenizer import XmlTokenizer
from repro.stream.writer import events_to_string

QUERIES = {
    "names": "//item/name",
    "bids": "//open_auction//bidder/increase",
    "people": "//person[name]/emailaddress",
    "cats": "//category/name",
}

#: Selective query for the skip gate: XMark's people section is one
#: contiguous, small slice of the document, so most segments carry
#: neither tag and are provably dead.
SELECTIVE = "//person/emailaddress"

SKIP_FLOOR = 0.50


def fail(message: str) -> "int":
    print(f"FAIL: {message}")
    return 1


def live_reference(text: str) -> "tuple[dict, dict]":
    pull = MultiQueryEngine(dict(QUERIES))
    pull.feed_text(text)
    pull_results = pull.close()
    push_results = MultiQueryEngine(dict(QUERIES)).evaluate_push(text)
    return pull_results, push_results


def crash_gate(workdir: str, text: str, reference: dict, bench: dict) -> "int | None":
    """Ingest, SIGKILL mid-segment (truncate + bit flip), recover, replay."""
    recoveries = []
    for trial, mutilate in enumerate(("truncate", "bitflip")):
        store = os.path.join(workdir, f"crash-{trial}")
        engine = MultiQueryEngine(dict(QUERIES))
        writer = EventLogWriter(
            store, segment_events=512, checkpoint_interval=600, sync="none"
        )
        writer.attach(engine)
        tokenizer = XmlTokenizer()
        tee = _Tee(engine.as_handler(), writer)
        cut = int(len(text) * 0.6)
        tokenizer.feed_into(text[:cut], tee)
        writer.flush()
        # SIGKILL: abandon the writer, then damage the active segment.
        active = os.path.join(store, writer._manifest.active)
        size = os.path.getsize(active)
        if mutilate == "truncate":
            with open(active, "r+b") as handle:
                handle.truncate(size - min(7, size))
        else:
            with open(active, "r+b") as handle:
                handle.seek(size - min(20, size))
                byte = handle.read(1)
                handle.seek(size - min(20, size))
                handle.write(bytes([byte[0] ^ 0xFF]))
        del writer, tokenizer, tee, engine

        # A fresh process recovers and finishes the job: replay the
        # intact prefix into a fresh engine, then re-feed the document
        # from the exact character the recovered event stream covers.
        writer = EventLogWriter(
            store, segment_events=512, checkpoint_interval=600, sync="none"
        )
        recovered_events = writer.position
        engine = MultiQueryEngine(dict(QUERIES))
        reader = EventLogReader(store)
        consumed = 0
        for event in reader.events():
            engine.feed_events((event,))
            consumed += 1
        if consumed != recovered_events:
            return fail(
                f"crash[{mutilate}]: reader saw {consumed} events, "
                f"writer recovered to {recovered_events}"
            )
        # Re-tokenize the whole document, skipping events the log
        # already holds (determinism makes the prefix identical).
        writer.attach(engine)

        class _CatchUpTee:
            def __init__(self, skip):
                self.skip = skip
                self.inner = _Tee(engine.as_handler(), writer)

            def _forward(self, method, *args):
                if self.skip > 0:
                    self.skip -= 1
                    return
                getattr(self.inner, method)(*args)

            def start_element(self, *a):
                self._forward("start_element", *a)

            def characters(self, *a):
                self._forward("characters", *a)

            def end_element(self, *a):
                self._forward("end_element", *a)

        tee = _CatchUpTee(recovered_events)
        tokenizer = XmlTokenizer()
        tokenizer.feed_into(text, tee)
        tokenizer.close_into(tee)
        writer.close()
        if engine.results() != reference:
            return fail(f"crash[{mutilate}]: recovered live results diverge")
        replayed = replay(dict(QUERIES), store)
        if replayed != reference:
            return fail(f"crash[{mutilate}]: post-recovery replay diverges")
        recoveries.append({
            "mutilation": mutilate,
            "recovered_events": recovered_events,
        })
    bench["recoveries"] = recoveries
    return None


def checkpoint_gate(store: str, checkpoints: list, reference: dict,
                    bench: dict) -> "int | None":
    if len(checkpoints) < 3:
        return fail(f"only {len(checkpoints)} checkpoints recorded")
    for checkpoint in checkpoints:
        resumed = replay(None, store, from_checkpoint=checkpoint)
        if resumed != reference:
            return fail(f"replay from checkpoint {checkpoint} diverges")
    bench["checkpoints_verified"] = len(checkpoints)
    return None


def skip_gate(store: str, text: str, bench: dict) -> "int | None":
    from repro.core.processor import XPathStream

    expected = XPathStream(SELECTIVE).evaluate(text)
    stats = ReplayStats()
    started = time.perf_counter()
    skipped = replay(SELECTIVE, store, stats=stats)
    skip_elapsed = time.perf_counter() - started
    started = time.perf_counter()
    unskipped = replay(SELECTIVE, store, skip=False)
    full_elapsed = time.perf_counter() - started
    if skipped != expected or unskipped != expected:
        return fail("selective replay results diverge from direct evaluation")
    if stats.skip_ratio < SKIP_FLOOR:
        return fail(
            f"skip ratio {stats.skip_ratio:.2f} below the {SKIP_FLOOR:.2f} "
            f"floor ({stats.segments_skipped}/{stats.segments_total} skipped)"
        )
    bench["skip"] = {
        "query": SELECTIVE,
        "ratio": round(stats.skip_ratio, 4),
        "segments_total": stats.segments_total,
        "segments_skipped": stats.segments_skipped,
        "events_decoded": stats.events_emitted,
        "replay_s": round(skip_elapsed, 4),
        "full_replay_s": round(full_elapsed, 4),
        "speedup": round(full_elapsed / skip_elapsed, 2) if skip_elapsed else None,
    }
    return None


def main(scale: float) -> int:
    text = events_to_string(xmark_events(scale))
    pull_reference, push_reference = live_reference(text)
    if pull_reference != push_reference:
        return fail("pull and push references disagree (pre-existing bug)")
    reference = pull_reference
    bench: dict = {"scale": scale, "document_chars": len(text)}

    workdir = tempfile.mkdtemp(prefix="store_smoke_")
    try:
        code = crash_gate(workdir, text, reference, bench)
        if code is not None:
            return code
        print(
            "crash gate ok: "
            + ", ".join(
                f"{r['mutilation']} recovered to event {r['recovered_events']}"
                for r in bench["recoveries"]
            )
        )

        store = os.path.join(workdir, "main")
        started = time.perf_counter()
        result = ingest(
            text, store, queries=dict(QUERIES),
            checkpoint_interval=700, segment_events=512, sync="none",
        )
        ingest_elapsed = time.perf_counter() - started
        if result.results != reference:
            return fail("live-during-ingest results diverge")
        bench["ingest"] = {
            "events": result.events,
            "segments": result.segments,
            "events_per_s": round(result.events / ingest_elapsed),
        }

        started = time.perf_counter()
        cold = replay(dict(QUERIES), store)
        replay_elapsed = time.perf_counter() - started
        if cold != reference:
            return fail("cold replay diverges from live evaluation")
        bench["replay_events_per_s"] = round(result.events / replay_elapsed)
        print(
            f"replay gate ok: {result.events} events, cold replay matches "
            f"live pull and push evaluation"
        )

        code = checkpoint_gate(store, result.checkpoints, reference, bench)
        if code is not None:
            return code
        print(f"checkpoint gate ok: {len(result.checkpoints)} resume points verified")

        code = skip_gate(store, text, bench)
        if code is not None:
            return code
        skip = bench["skip"]
        print(
            f"skip gate ok: {skip['segments_skipped']}/{skip['segments_total']} "
            f"segments skipped (ratio {skip['ratio']:.2f} >= {SKIP_FLOOR:.2f}), "
            f"results identical"
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    with open("BENCH_store.json", "w", encoding="utf-8") as handle:
        json.dump(bench, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("ok: BENCH_store.json written")
    return 0


if __name__ == "__main__":
    sys.exit(main(float(sys.argv[1]) if len(sys.argv) > 1 else 1.0))
