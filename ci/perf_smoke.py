"""CI smoke: the fused push pipeline must be faster than pull — and exact.

Checks the acceptance properties of the hot-path and compiled-tier work:

1. **Exactness** — the push scanner emits an event stream byte-identical
   to the pull scanner over the XMark corpus, and every benchmark query
   returns identical solution ids through pull, push, *and* the compiled
   tiers (also asserted inside the benchmark itself).
2. **Throughput win** — push beats pull by at least ``MIN_SPEEDUP`` on
   every XMark query.  The local target is 2x (see ``BENCH_core.json``);
   the CI gate is 1.5x to leave headroom for noisy shared runners.
3. **Compiled-tier win** — the lazy-DFA + turbo-scanner path beats pull
   by ``COMPILED_MIN_SPEEDUP`` on every predicate-free XMark query at
   the gate profile, and no query loses more than noise headroom
   (``COMPILED_PUSH_FLOOR``) against the current push pipeline.  The
   recorded target is 10x at the default profile; the gate numbers leave
   headroom for noisy shared runners.

It then runs the full benchmark at the default profile and writes
``BENCH_core.json`` so the perf trajectory is recorded per commit; the
recorded summary must itself meet the 10x compiled target (one retry —
the compiled configs finish in milliseconds, so a single descheduling
blip can dent a best-of on shared runners).

Run from the repo root::

    PYTHONPATH=src python ci/perf_smoke.py
"""

from __future__ import annotations

import sys

from repro.bench.corpora import benchmark_corpus
from repro.bench.hotpath import run_benchmark, write_report
from repro.stream.events import EventCollector
from repro.stream.tokenizer import XmlTokenizer, iter_text_chunks

MIN_SPEEDUP = 1.5
#: Gate-profile bar for compiled-vs-pull on predicate-free XMark queries
#: (recorded target: 10x at the default profile; typical tiny-profile
#: readings are 10-12x).
COMPILED_MIN_SPEEDUP = 6.0
#: Compiled must not lose to push anywhere; generated TwigM dispatch is
#: at parity on tokenizer-dominated value-test queries, so the gate
#: allows measurement noise below 1.0.
COMPILED_PUSH_FLOOR = 0.8
GATE_PROFILE = "tiny"
#: Repeats for the recorded run: the compiled configs are fast enough
#: that best-of needs more samples to shake scheduler noise out of the
#: recorded speedups.
RECORD_REPEATS = 8
REPORT = "BENCH_core.json"


def scanner_identical(path) -> bool:
    """Event-level differential: push scan == pull scan over ``path``."""
    pull_tokenizer = XmlTokenizer()
    pull_events = []
    push_tokenizer = XmlTokenizer()
    collector = EventCollector()
    for chunk in iter_text_chunks(path):
        pull_events.extend(pull_tokenizer.feed(chunk))
        push_tokenizer.feed_into(chunk, collector)
    pull_events.extend(pull_tokenizer.close())
    push_tokenizer.close_into(collector)
    return collector.events == pull_events


def main() -> int:
    corpus = benchmark_corpus(GATE_PROFILE)
    print(f"perf smoke: scanner differential over {corpus.name} "
          f"({corpus.size_bytes()} bytes)")
    if not scanner_identical(corpus.path):
        print("FAIL: push scanner diverges from pull scanner", file=sys.stderr)
        return 1
    print("  push event stream identical to pull")

    # The benchmark asserts pull/push solution-id equality per query.
    gate = run_benchmark(profile=GATE_PROFILE, repeats=2)
    failures = 0
    for key, corpus_report in gate["corpora"].items():
        for query, row in corpus_report["queries"].items():
            print(f"  {key}  {query}: push {row['speedup']}x, "
                  f"compiled {row['compiled_vs_pull']}x vs pull / "
                  f"{row['compiled_vs_push']}x vs push "
                  f"({row['matches']} matches, all pipelines)")
            if key == "xmark" and row["speedup"] < MIN_SPEEDUP:
                failures += 1
                print(
                    f"FAIL: push is only {row['speedup']}x pull for {query!r} "
                    f"(gate: {MIN_SPEEDUP}x)",
                    file=sys.stderr,
                )
            if (
                key == "xmark"
                and row["engine"] == "pathm"
                and row["compiled_vs_pull"] < COMPILED_MIN_SPEEDUP
            ):
                failures += 1
                print(
                    f"FAIL: compiled is only {row['compiled_vs_pull']}x pull "
                    f"for predicate-free {query!r} "
                    f"(gate: {COMPILED_MIN_SPEEDUP}x)",
                    file=sys.stderr,
                )
            if row["compiled_vs_push"] < COMPILED_PUSH_FLOOR:
                failures += 1
                print(
                    f"FAIL: compiled is {row['compiled_vs_push']}x push for "
                    f"{query!r} (floor: {COMPILED_PUSH_FLOOR}x)",
                    file=sys.stderr,
                )
    if failures:
        return 1

    # Recorded run: the summary written to BENCH_core.json must meet the
    # 10x compiled target.  One retry absorbs a descheduling blip.
    for attempt in (1, 2):
        payload = run_benchmark(repeats=RECORD_REPEATS)
        if payload["summary"]["compiled"]["xmark_pf_target_met"]:
            break
        if attempt == 1:
            print(f"  compiled minimum "
                  f"{payload['summary']['compiled']['xmark_pf_min_vs_pull']}x "
                  f"below target on first recorded run, retrying",
                  file=sys.stderr)
    write_report(payload, REPORT)
    summary = payload["summary"]
    compiled = summary["compiled"]
    print(f"  recorded XMark push minimum {summary['xmark_min_push_vs_pull']}x "
          f"(local target {summary['xmark_target']}x)")
    print(f"  recorded XMark predicate-free compiled minimum "
          f"{compiled['xmark_pf_min_vs_pull']}x "
          f"(target {compiled['xmark_pf_target']}x), "
          f"compiled-vs-push minimum {compiled['min_vs_push']}x")
    print(f"wrote {REPORT}")
    if not compiled["xmark_pf_target_met"]:
        print(
            f"FAIL: recorded compiled minimum "
            f"{compiled['xmark_pf_min_vs_pull']}x is below the "
            f"{compiled['xmark_pf_target']}x target",
            file=sys.stderr,
        )
        return 1
    print("perf smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
