"""CI smoke: the fused push pipeline must be faster than pull — and exact.

Checks the two acceptance properties of the hot-path work:

1. **Exactness** — the push scanner emits an event stream byte-identical
   to the pull scanner over the XMark corpus, and every benchmark query
   returns identical solution ids through both pipelines (also asserted
   inside the benchmark itself).
2. **Throughput win** — push beats pull by at least ``MIN_SPEEDUP`` on
   every XMark query.  The local target is 2x (see ``BENCH_core.json``);
   the CI gate is 1.5x to leave headroom for noisy shared runners.

It then runs the full benchmark at the default profile and writes
``BENCH_core.json`` so the perf trajectory is recorded per commit.

Run from the repo root::

    PYTHONPATH=src python ci/perf_smoke.py
"""

from __future__ import annotations

import sys

from repro.bench.corpora import benchmark_corpus
from repro.bench.hotpath import run_benchmark, write_report
from repro.stream.events import EventCollector
from repro.stream.tokenizer import XmlTokenizer, iter_text_chunks

MIN_SPEEDUP = 1.5
GATE_PROFILE = "tiny"
REPORT = "BENCH_core.json"


def scanner_identical(path) -> bool:
    """Event-level differential: push scan == pull scan over ``path``."""
    pull_tokenizer = XmlTokenizer()
    pull_events = []
    push_tokenizer = XmlTokenizer()
    collector = EventCollector()
    for chunk in iter_text_chunks(path):
        pull_events.extend(pull_tokenizer.feed(chunk))
        push_tokenizer.feed_into(chunk, collector)
    pull_events.extend(pull_tokenizer.close())
    push_tokenizer.close_into(collector)
    return collector.events == pull_events


def main() -> int:
    corpus = benchmark_corpus(GATE_PROFILE)
    print(f"perf smoke: scanner differential over {corpus.name} "
          f"({corpus.size_bytes()} bytes)")
    if not scanner_identical(corpus.path):
        print("FAIL: push scanner diverges from pull scanner", file=sys.stderr)
        return 1
    print("  push event stream identical to pull")

    # The benchmark asserts pull/push solution-id equality per query.
    gate = run_benchmark(profile=GATE_PROFILE, repeats=2)
    failures = 0
    for key, corpus_report in gate["corpora"].items():
        for query, row in corpus_report["queries"].items():
            print(f"  {key}  {query}: {row['speedup']}x "
                  f"({row['matches']} matches, both pipelines)")
            if key == "xmark" and row["speedup"] < MIN_SPEEDUP:
                failures += 1
                print(
                    f"FAIL: push is only {row['speedup']}x pull for {query!r} "
                    f"(gate: {MIN_SPEEDUP}x)",
                    file=sys.stderr,
                )
    if failures:
        return 1

    payload = run_benchmark()
    write_report(payload, REPORT)
    summary = payload["summary"]
    print(f"  recorded XMark minimum {summary['xmark_min_push_vs_pull']}x "
          f"(local target {summary['xmark_target']}x)")
    print(f"wrote {REPORT}")
    print("perf smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
