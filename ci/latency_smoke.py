"""CI smoke: earliest emission must be exact — and actually earlier.

Gates the acceptance properties of the earliest-emission work
(docs/LATENCY.md):

1. **Exactness** — on every XMark predicate query, ``emission="earliest"``
   produces exactly the default mode's result set (in particular it never
   emits a result the default mode doesn't).  Asserted per query inside
   the benchmark and re-checked here.
2. **Latency win** — the pooled median decision lag under earliest
   emission is at most ``LATENCY_TARGET_RATIO`` (10%) of the default
   mode's.  Lag is deterministic (events counted, not wall time), so no
   noise headroom is needed; in practice the earliest median is 0.
3. **Recorded artifact** — ``BENCH_latency.json`` is written at the
   gate profile and must be well-formed: the summary carries a nonzero
   default median (the corpus genuinely exercises candidate buffering)
   and per-query rows for every predicate query.

Run from the repo root::

    PYTHONPATH=src python ci/latency_smoke.py
"""

from __future__ import annotations

import json
import sys

from repro.bench.latency import (
    LATENCY_TARGET_RATIO,
    PREDICATE_QIDS,
    run_benchmark,
    write_report,
)

GATE_PROFILE = "tiny"
REPORT = "BENCH_latency.json"


def main() -> int:
    payload = run_benchmark(profile=GATE_PROFILE)
    write_report(payload, REPORT)
    failures = 0

    for qid, row in payload["queries"].items():
        d = row["default"]["event_lag"]
        e = row["earliest"]["event_lag"]
        print(f"  {qid} [{row['engine']}]: default median {d['median']} "
              f"events -> earliest {e['median']} "
              f"({row['matches']} matches, results "
              f"{'equal' if row['results_equal'] else 'DIFFER'})")
        if not row["results_equal"]:
            failures += 1
            print(f"FAIL: earliest emission changes the result set of "
                  f"{row['query']!r}", file=sys.stderr)

    summary = payload["summary"]
    if set(payload["queries"]) != set(PREDICATE_QIDS):
        failures += 1
        print(f"FAIL: benchmark covered {sorted(payload['queries'])}, "
              f"expected {sorted(PREDICATE_QIDS)}", file=sys.stderr)
    if not summary["default_median_event_lag"]:
        failures += 1
        print("FAIL: default-mode median decision lag is zero — the corpus "
              "does not exercise candidate buffering, so the gate is vacuous",
              file=sys.stderr)
    elif summary["median_lag_ratio"] > LATENCY_TARGET_RATIO:
        failures += 1
        print(f"FAIL: earliest median lag is "
              f"{summary['median_lag_ratio']:.2%} of default "
              f"(gate: {LATENCY_TARGET_RATIO:.0%})", file=sys.stderr)

    # The artifact must round-trip: a malformed report would poison the
    # recorded trajectory.
    with open(REPORT, encoding="utf-8") as handle:
        recorded = json.load(handle)
    if recorded.get("summary", {}).get("target_met") is not True:
        failures += 1
        print("FAIL: recorded BENCH_latency.json summary does not meet the "
              "latency target", file=sys.stderr)

    print(f"  pooled median lag: default "
          f"{summary['default_median_event_lag']} events -> earliest "
          f"{summary['earliest_median_event_lag']} "
          f"(ratio {summary['median_lag_ratio']}, "
          f"target <= {LATENCY_TARGET_RATIO})")
    print(f"wrote {REPORT}")
    if failures:
        return 1
    print("latency smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
