"""CI smoke: observability must be free when off and truthful when on.

Gates the acceptance properties of the ``repro.obs`` layer:

1. **Structurally free when disabled** — constructing any stream without
   ``metrics=`` must instantiate the *plain* machine classes and leave
   the tokenizer unbound; the hot loops then contain no metrics checks
   at all.
2. **Throughput unchanged** — the instrumented-but-disabled push path
   must stay within ``MAX_OVERHEAD`` (5%) of the recorded
   ``BENCH_core.json`` push throughput on every XMark benchmark query
   (best of ``REPEATS`` runs; the baseline is re-recorded by
   ``ci/perf_smoke.py`` on the same machine each commit).
3. **Identical results either way** — enabling metrics must not change
   any solution id, through pull, push, and multi-query dispatch.
4. **Cumulative truth across checkpoints** — metrics carried through
   ``snapshot()``/``restore()`` must make a resumed stream's registry
   report exactly what an uninterrupted run reports.
5. **Exposition round-trips** — the Prometheus text parses back into
   the same samples the snapshot reports, and the JSON rendering loads.
6. **Compiled tiers report in** — a ``compiled=True`` run with metrics
   populates the ``repro_compile_*`` families (DFA cache size, hit
   ratio, fallbacks), returns unchanged solution ids, and a compiled
   run *without* metrics must not touch the obs layer at all.

Run from the repo root::

    PYTHONPATH=src python ci/obs_smoke.py
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.bench.corpora import benchmark_corpus
from repro.bench.hotpath import XMARK_QUERIES
from repro.core.processor import XPathStream
from repro.multiq.engine import MultiQueryEngine
from repro.obs.metrics import MetricsRegistry

MAX_OVERHEAD = 0.05
REPEATS = 5
BASELINE = "BENCH_core.json"


def check_structurally_free() -> list[str]:
    """Disabled mode must run the plain classes, not no-op'd obs ones."""
    failures = []
    stream = XPathStream("//open_auction[bidder]//reserve")
    if type(stream.engine).__module__.startswith("repro.obs"):
        failures.append(
            f"disabled XPathStream built {type(stream.engine).__name__}; "
            "expected a plain repro.core machine"
        )
    engine = MultiQueryEngine({"q": "//item/name"})
    for unit in engine._registry.units():
        if type(unit.engine).__module__.startswith("repro.obs"):
            failures.append(
                f"disabled MultiQueryEngine built {type(unit.engine).__name__}"
            )
    return failures


def check_throughput(corpus) -> list[str]:
    """Push mb/s (metrics off) vs the recorded baseline, per query."""
    baseline_path = Path(BASELINE)
    if not baseline_path.exists():
        print(f"  {BASELINE} missing — run ci/perf_smoke.py first; skipping "
              "throughput gate")
        return []
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("profile") != corpus.name.split("-")[-1]:
        print(f"  baseline profile {baseline.get('profile')!r} != corpus "
              f"{corpus.name!r}; skipping throughput gate")
        return []
    size_mb = corpus.size_bytes() / 1e6
    rows = baseline["corpora"]["xmark"]["queries"]
    failures = []
    for query, _why in XMARK_QUERIES:
        recorded = rows[query]["push"]["mb_per_s"]
        best = 0.0
        for _ in range(REPEATS):
            stream = XPathStream(query)
            started = time.perf_counter()
            stream.evaluate_push(corpus.path)
            seconds = time.perf_counter() - started
            best = max(best, size_mb / seconds)
        ratio = best / recorded
        print(f"  {query}: {best:.2f} MB/s vs baseline {recorded} "
              f"({ratio:.2f}x)")
        if ratio < 1.0 - MAX_OVERHEAD:
            failures.append(
                f"disabled-mode push is {best:.2f} MB/s for {query!r}, "
                f"more than {MAX_OVERHEAD:.0%} below baseline {recorded}"
            )
    return failures


def check_result_parity(corpus) -> list[str]:
    """Metrics on vs off: identical ids through every pipeline."""
    failures = []
    text = corpus.path.read_text(encoding="utf-8")
    for query, _why in XMARK_QUERIES:
        plain_pull = XPathStream(query).evaluate(corpus.path)
        plain_push = XPathStream(query).evaluate_push(corpus.path)
        registry = MetricsRegistry()
        obs_pull = XPathStream(query, metrics=registry).evaluate(corpus.path)
        obs_push = XPathStream(query, metrics=registry).evaluate_push(corpus.path)
        if not plain_pull == obs_pull == plain_push == obs_push:
            failures.append(f"metrics changed results for {query!r}")
    queries = {f"q{i}": q for i, (q, _why) in enumerate(XMARK_QUERIES)}
    plain = MultiQueryEngine(queries).evaluate(text)
    observed = MultiQueryEngine(queries, metrics=MetricsRegistry()).evaluate(text)
    if plain != observed:
        failures.append("metrics changed multi-query dispatch results")
    return failures


def _families(registry: MetricsRegistry) -> dict:
    """Snapshot reduced to {family: {label-tuple: value}} for comparison.

    Histograms snapshot as bucket maps rather than labelled samples and
    are compared by their (count, sum) pair instead.
    """
    flat = {}
    for name, family in registry.snapshot().items():
        if "values" in family:
            flat[name] = {
                tuple(sorted(value["labels"].items())): value["value"]
                for value in family["values"]
            }
        else:
            flat[name] = {(): (family["count"], family["sum"])}
    return flat


def check_checkpoint_continuity(corpus) -> list[str]:
    """Resumed-run registry totals == uninterrupted-run registry totals."""
    text = corpus.path.read_text(encoding="utf-8")
    mid = len(text) // 2
    queries = {f"q{i}": q for i, (q, _why) in enumerate(XMARK_QUERIES)}

    whole_registry = MetricsRegistry()
    whole = MultiQueryEngine(queries, metrics=whole_registry)
    whole.feed_text(text)
    whole_results = whole.close()

    first = MultiQueryEngine(queries, metrics=MetricsRegistry())
    first.feed_text(text[:mid])
    resumed_registry = MetricsRegistry()
    resumed = MultiQueryEngine.restore(first.snapshot(),
                                       metrics=resumed_registry)
    resumed.feed_text(text[mid:])
    resumed_results = resumed.close()

    failures = []
    if whole_results != resumed_results:
        failures.append("checkpoint resume changed results")
    whole_flat, resumed_flat = _families(whole_registry), _families(resumed_registry)
    for family, values in whole_flat.items():
        if family == "repro_machine_peak_entries":
            continue  # high-water marks are path-dependent by definition
        if resumed_flat.get(family) != values:
            failures.append(
                f"{family}: resumed registry reports "
                f"{resumed_flat.get(family)} != uninterrupted {values}"
            )
    return failures


def _parse_prometheus(text: str) -> dict:
    """Parse exposition text back to {family: {label-tuple: value}}."""
    parsed: dict = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        metric, _, raw = line.rpartition(" ")
        labels = ()
        if "{" in metric:
            metric, _, body = metric.partition("{")
            items = []
            for pair in body.rstrip("}").split('",'):
                key, _, value = pair.partition("=")
                items.append((key.strip(), value.strip().strip('"')))
            labels = tuple(sorted(items))
        value = float(raw)
        parsed.setdefault(metric, {})[labels] = value
    return parsed


def check_exposition(corpus) -> list[str]:
    """Prometheus text and JSON renderings agree with the snapshot."""
    registry = MetricsRegistry()
    stream = XPathStream(XMARK_QUERIES[0][0], metrics=registry)
    stream.evaluate_push(corpus.path)
    failures = []

    parsed = _parse_prometheus(registry.render_prometheus())
    for family, values in _families(registry).items():
        for labels, value in values.items():
            buckets_and_parts = parsed.get(family, {})
            seen = buckets_and_parts.get(labels)
            if family in parsed and seen is not None and float(seen) != float(value):
                failures.append(
                    f"prometheus round-trip mismatch for {family}{labels}: "
                    f"{seen} != {value}"
                )
    loaded = json.loads(registry.render_json())
    for want in ("repro_machine_events_total", "repro_tokenizer_bytes_total"):
        if want not in loaded:
            failures.append(f"{want} absent from JSON rendering")
    return failures


def check_compiled_metrics(corpus) -> list[str]:
    """Compiled runs must publish repro_compile_* — and only when asked."""
    failures = []
    query = XMARK_QUERIES[0][0]  # predicate-free: exercises the DFA tier
    plain = XPathStream(query, compiled=True).evaluate_push(corpus.path)

    registry = MetricsRegistry()
    observed = XPathStream(query, compiled=True, metrics=registry)
    ids = observed.evaluate_push(corpus.path)
    if ids != plain:
        failures.append("metrics changed compiled-tier results")
    rendered = registry.render_prometheus()
    for family in (
        "repro_compile_dfa_states",
        "repro_compile_dfa_transitions",
        "repro_compile_dfa_starts_total",
        "repro_compile_dfa_misses_total",
        "repro_compile_hit_ratio",
        "repro_compile_fallbacks_total",
    ):
        if family not in rendered:
            failures.append(f"{family} absent after a compiled run")
    publisher_attr = "_compile_publisher"
    if not hasattr(registry, publisher_attr):
        failures.append("compiled run with metrics never bound a publisher")

    # Zero-cost-when-off: no publisher, no obs imports on the machine.
    bare = XPathStream(query, compiled=True)
    bare.evaluate_push(corpus.path)
    if hasattr(bare.push_handler(), "registry"):
        failures.append("compiled run without metrics bound a registry")
    return failures


def main() -> int:
    corpus = benchmark_corpus()
    print(f"obs smoke: {corpus.name} ({corpus.size_bytes()} bytes)")
    failures: list[str] = []
    print("  structural zero-overhead check")
    failures += check_structurally_free()
    failures += check_throughput(corpus)
    print("  result parity (metrics on == off)")
    failures += check_result_parity(corpus)
    print("  checkpoint metric continuity")
    failures += check_checkpoint_continuity(corpus)
    print("  exposition round-trip")
    failures += check_exposition(corpus)
    print("  compiled-tier metric families")
    failures += check_compiled_metrics(corpus)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("obs smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
