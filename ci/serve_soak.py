"""CI gate: the serving layer under concurrent, hostile load.

Two drills, both judged by the only property that matters — every
session's results must be **byte-identical** to a single-stream
:class:`repro.core.processor.XPathStream` reference, no matter what
the network and the processes did in between:

1. **Concurrent soak** — ``SESSIONS`` clients stream an XMark document
   into one :class:`repro.serve.server.SessionServer` at once, across
   several tenants, priorities, and chunk sizes.  A third of the
   clients corrupt their own frames (seeded, probabilistic — the CRC
   catches them and the client resumes from the last checkpoint), and
   a third are killed mid-stream and restarted (reconnect-resume with
   the same token).
2. **Sharded kill** — a :class:`repro.serve.server.ShardedServer` with
   two worker processes takes a smaller fleet; once sessions are in
   flight, the worker holding the first client's shard is SIGKILLed.
   The supervisor restarts it, and every interrupted session resumes
   from the shared disk spool to an unchanged result stream.

Shed/resume counts and the server-side p99 chunk latency (from the
``repro_serve_chunk_seconds`` histogram) are written to
``BENCH_serve.json`` so the serving trajectory is recorded per commit.

Run from the repo root (the spawn-context workers re-import this
module, hence the ``__main__`` guard)::

    PYTHONPATH=src python ci/serve_soak.py
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import signal
import socket
import sys
import time

from repro.core.processor import XPathStream
from repro.datasets.xmark import xmark_events
from repro.obs.metrics import MetricsRegistry
from repro.serve.client import ServeClient
from repro.serve.server import SessionServer, ShardedServer, shard_for_token
from repro.serve.session import ServeConfig
from repro.stream.writer import events_to_string

SESSIONS = 64
SHARDED_SESSIONS = 8
SHARDS = 2
SCALE = 6.0
SEED = 20060814
CORRUPT_RATE = 0.04
KILL_AT_SEQ = 10
REPORT = "BENCH_serve.json"

#: Standing queries drawn from the XMark benchmark set; each session
#: registers one or two of them.
QUERIES = {
    "items": "//regions//item/name",
    "people": "/site/people/person[@id]/name",
    "reserves": "//open_auction[bidder/personref]//reserve",
    "text": "//description//listitem//text",
}


def references(xml: str) -> dict:
    out = {}
    for name, query in QUERIES.items():
        stream = XPathStream(query)
        stream.feed_text(xml)
        out[name] = stream.close()
    return out


def chunked(xml: str, size: int) -> list:
    return [xml[i:i + size] for i in range(0, len(xml), size)]


def make_mangler(rng: random.Random, counter: list):
    """Flip one byte of an outgoing write with probability CORRUPT_RATE.

    Probabilistic, not periodic: a fixed every-Nth-write mangler can
    phase-lock with the writes-per-attempt cycle and corrupt the first
    frame of every resume forever.
    """

    def mangle(data: bytes) -> bytes:
        if len(data) > 60 and rng.random() < CORRUPT_RATE:
            i = rng.randrange(20, len(data))
            counter[0] += 1
            return data[:i] + bytes([data[i] ^ 0xFF]) + data[i + 1:]
        return data

    return mangle


async def drive(client: ServeClient, chunks: list, kill_at: "int | None",
                kills: list) -> dict:
    """Run one client; optionally kill and restart it mid-stream."""
    if kill_at is not None:
        task = asyncio.ensure_future(client.run(chunks))
        deadline = time.monotonic() + 60
        while (client.last_seq < kill_at and not task.done()
               and time.monotonic() < deadline):
            await asyncio.sleep(0.002)
        if task.done():
            return task.result()
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass
        kills[0] += 1
    return await client.run(chunks)


def histogram_p99(metrics: MetricsRegistry) -> "float | None":
    """Upper-bound estimate of the 99th percentile chunk latency."""
    histogram = metrics.get("repro_serve_chunk_seconds")
    if histogram is None or histogram.count == 0:
        return None
    target = 0.99 * histogram.count
    cumulative = 0
    for bound, count in zip(histogram.buckets, histogram._counts):
        cumulative += count
        if cumulative >= target:
            return bound
    return float("inf")


async def concurrent_soak(xml: str, expected: dict) -> "tuple[dict, list]":
    metrics = MetricsRegistry()
    config = ServeConfig(
        port=0, checkpoint_interval=2, retry_after=0.05, queue_depth=6,
        max_sessions=2 * SESSIONS, max_sessions_per_tenant=SESSIONS,
        idle_timeout=30.0,
    )
    server = SessionServer(config, metrics=metrics)
    await server.start()

    seeder = random.Random(SEED)
    corrupted = [0]
    kills = [0]
    names = sorted(QUERIES)
    clients, jobs = [], []
    for i in range(SESSIONS):
        mine = {names[i % 4]: QUERIES[names[i % 4]],
                names[(i + 1) % 4]: QUERIES[names[(i + 1) % 4]]}
        mangle = make_mangler(random.Random(SEED + i), corrupted) \
            if i % 3 == 0 else None
        client = ServeClient(
            "127.0.0.1", server.port, mine,
            tenant=f"tenant-{i % 8}", priority=i % 3,
            rack_every=16, max_attempts=80,
            backoff_base=0.01, backoff_cap=0.25,
            rng=random.Random(SEED ^ i), mangle=mangle,
        )
        clients.append(client)
        kill_at = KILL_AT_SEQ + seeder.randrange(20) if i % 3 == 1 else None
        jobs.append(drive(client, chunked(xml, 1024 + 97 * (i % 13)),
                          kill_at, kills))

    started = time.monotonic()
    await asyncio.gather(*jobs)
    wall = time.monotonic() - started
    shed = server.shedder.shed
    rejected = server.shedder.rejected
    await server.stop()

    failures = []
    for i, client in enumerate(clients):
        for name in client.queries:
            if client.result_ids(name) != expected[name]:
                failures.append(f"session {i} query {name!r} diverged")

    report = {
        "sessions": SESSIONS,
        "document_chars": len(xml),
        "corrupted_frames": corrupted[0],
        "client_kills": kills[0],
        "resumes": sum(c.resumes for c in clients),
        "attempts": sum(c.attempts for c in clients),
        "shed": shed,
        "rejected": rejected,
        "p99_chunk_seconds": histogram_p99(metrics),
        "chunks_observed": metrics.get("repro_serve_chunk_seconds").count,
        "wall_seconds": round(wall, 3),
    }
    return report, failures


def free_port_block(count: int) -> int:
    """A base port whose block [base, base+count] is currently free."""
    rng = random.Random()
    for _ in range(50):
        base = rng.randrange(20000, 50000)
        try:
            socks = []
            for offset in range(count + 1):
                sock = socket.socket()
                sock.bind(("127.0.0.1", base + offset))
                socks.append(sock)
        except OSError:
            continue
        finally:
            for sock in socks:
                sock.close()
        return base
    raise RuntimeError("no free port block found")


async def sharded_kill(xml: str, expected: dict) -> "tuple[dict, list]":
    config = ServeConfig(
        port=free_port_block(SHARDS), shards=SHARDS,
        checkpoint_interval=1, retry_after=0.05,
    )
    server = ShardedServer(config)
    await server.start()

    clients = [
        ServeClient(
            "127.0.0.1", config.port, {"items": QUERIES["items"]},
            tenant=f"tenant-{i}", rack_every=8, max_attempts=80,
            backoff_base=0.02, backoff_cap=0.5, rng=random.Random(SEED + i),
        )
        for i in range(SHARDED_SESSIONS)
    ]

    sigkills = [0]

    async def assassin() -> None:
        # wait until the fleet is streaming, then SIGKILL the worker
        # that owns the first client's shard — mid-stream, no warning
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            leader = clients[0]
            if leader.token and leader.last_seq >= KILL_AT_SEQ:
                shard = shard_for_token(leader.token, SHARDS)
                pid = server.worker_pid(shard)
                if pid is not None:
                    os.kill(pid, signal.SIGKILL)
                    sigkills[0] += 1
                return
            await asyncio.sleep(0.005)

    started = time.monotonic()
    killer = asyncio.ensure_future(assassin())
    await asyncio.gather(*(
        client.run(chunked(xml, 1500)) for client in clients
    ))
    wall = time.monotonic() - started
    killer.cancel()
    restarts = server.restarts
    await server.stop()

    failures = []
    for i, client in enumerate(clients):
        if client.result_ids("items") != expected["items"]:
            failures.append(f"sharded session {i} diverged")
    if sigkills[0] == 0:
        failures.append("assassin never fired — sharded drill is vacuous")
    if restarts < 1:
        failures.append("supervisor recorded no worker restart")

    report = {
        "sessions": SHARDED_SESSIONS,
        "shards": SHARDS,
        "worker_sigkills": sigkills[0],
        "supervisor_restarts": restarts,
        "resumes": sum(c.resumes for c in clients),
        "attempts": sum(c.attempts for c in clients),
        "wall_seconds": round(wall, 3),
    }
    return report, failures


def main() -> int:
    xml = events_to_string(xmark_events(SCALE))
    expected = references(xml)
    print(f"serve soak: XMark scale {SCALE} ({len(xml)} chars), "
          f"{len(QUERIES)} queries, "
          f"{ {n: len(ids) for n, ids in expected.items()} }")

    report_a, failures = asyncio.run(concurrent_soak(xml, expected))
    print(f"  concurrent: {report_a['sessions']} sessions in "
          f"{report_a['wall_seconds']}s — {report_a['corrupted_frames']} "
          f"corrupted frames, {report_a['client_kills']} client kills, "
          f"{report_a['resumes']} resumes, {report_a['shed']} shed, "
          f"p99 chunk {report_a['p99_chunk_seconds']}s")

    report_b, sharded_failures = asyncio.run(sharded_kill(xml, expected))
    failures += sharded_failures
    print(f"  sharded: {report_b['sessions']} sessions over "
          f"{report_b['shards']} workers in {report_b['wall_seconds']}s — "
          f"{report_b['worker_sigkills']} SIGKILL, "
          f"{report_b['supervisor_restarts']} restarts, "
          f"{report_b['resumes']} resumes")

    if report_a["corrupted_frames"] == 0:
        failures.append("no frame was corrupted — corruption drill vacuous")
    if report_a["client_kills"] == 0:
        failures.append("no client was killed — kill drill vacuous")
    if report_a["resumes"] == 0:
        failures.append("no session resumed — resume path unexercised")

    with open(REPORT, "w", encoding="utf-8") as handle:
        json.dump({"concurrent": report_a, "sharded": report_b},
                  handle, indent=2)
        handle.write("\n")
    print(f"  report written to {REPORT}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("serve soak: all sessions byte-identical under corruption, "
          "client kills, and a worker SIGKILL")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
